"""Policy replay engine: drive an L1D policy from a recorded trace.

The engine instantiates the real per-SM :class:`~repro.cache.l1d.L1DCache`
and the real policy objects — the exact protocol path of the paper's
Figure 1/8 flow, including PL decay on set queries, VTA insert/probe and
PDPT sampling — but services every fetch *immediately* instead of
through the timing machine.  Workload generation, coalescing, warp
scheduling and the memory system are all skipped: replaying a trace is
the functional equivalent of :func:`repro.experiments.cachesim`'s
characterisation path, extended from plain caches to full policies.

Replay semantics (and when they are valid — see EXPERIMENTS.md):

* fills are instantaneous, so lines are never left RESERVED between
  accesses and MSHR/miss-queue pressure never materialises — cache
  *contents* and policy decisions are exact, timing-induced stalls are
  not modelled;
* a STALL outcome is retried in place, re-querying the set exactly as
  the blocked pipeline register does in Section 2; each retry decays
  PLs, so protection policies always converge (bounded by the PL width);
* the returned :class:`~repro.gpu.simulator.SimResult` carries the full
  cache/policy counters with all timing fields zero.

Determinism: one recorded trace replayed through the same policy always
produces bit-identical counters, and replaying a recorded trace is
bit-identical to driving the policy from the live functional stream —
the differential oracle (`tests/trace/test_record_replay.py`) holds both.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.cache.l1d import L1DCache, L1DStats, MemAccess
from repro.core import make_policy
from repro.core.policy import CachePolicy
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimResult
from repro.trace.format import TraceFormatError, TraceReader, TraceRecord
from repro.utils.hashing import hash_pc
from repro.workloads.base import Workload

#: Retry bound for in-place stall retries.  A stalled protection policy
#: frees a line after at most ``pl_max`` (15) decaying re-queries; 4096
#: turns a model bug into a loud error instead of a hang.
MAX_STALL_RETRIES = 4096

#: Non-blocking replay: how many accesses a fetch stays outstanding
#: before its fill is applied.  The replay clock is *accesses*, not
#: cycles, so the window is the functional analogue of memory latency —
#: large enough to keep several misses in flight (exercising RESERVED
#: lines, MSHR merging and resource stalls), small enough that the
#: outstanding set stays bounded by ``min(window, mshr_entries)``.
NB_FILL_WINDOW = 24


class ReplayStallError(RuntimeError):
    """An access stalled without converging — a policy/model bug."""


class ReplayEngine:
    """Per-SM caches + policies consuming a record stream."""

    def __init__(
        self,
        config: GPUConfig,
        policy_factory,
    ) -> None:
        self.config = config
        self._insn_ids: Dict[int, int] = {}
        self.sent_fetches = 0
        self.sent_writes = 0
        self.caches: List[L1DCache] = []
        l1 = config.l1d
        self.non_blocking = l1.non_blocking
        for sm_id in range(config.num_sms):
            cache = L1DCache(
                l1.geometry(),
                policy_factory(),
                send_fn=self._count_send,
                mshr_entries=l1.mshr_entries,
                mshr_merge=l1.mshr_merge,
                miss_queue_depth=l1.miss_queue_depth,
                sm_id=sm_id,
                non_blocking=l1.non_blocking,
            )
            self.caches.append(cache)
        self.replayed_records = 0
        #: Records replayed per SM stream; :func:`replay_trace` checks
        #: this against the trace header's ``records_per_sm``.
        self.replayed_per_sm: List[int] = [0] * config.num_sms
        # Non-blocking replay state: per-SM FIFO of (issue_seq, block)
        # fetches awaiting their fill, plus a per-SM access counter that
        # serves as the replay clock (fills apply NB_FILL_WINDOW accesses
        # after issue, in issue order — deterministic wakeups).
        self._nb_outstanding: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(config.num_sms)
        ]
        self._nb_seq: List[int] = [0] * config.num_sms

    # -- plumbing ------------------------------------------------------

    def _count_send(self, fetch) -> None:
        if fetch.is_write:
            self.sent_writes += 1
        else:
            self.sent_fetches += 1

    def _insn_id(self, pc: int) -> int:
        cached = self._insn_ids.get(pc)
        if cached is None:
            cached = self._insn_ids[pc] = hash_pc(pc)
        return cached

    # -- replay --------------------------------------------------------

    def access(self, record: TraceRecord) -> None:
        """Push one record through its SM's cache, servicing fetches
        immediately (blocking mode) or after :data:`NB_FILL_WINDOW`
        accesses (non-blocking mode) and retrying stalls in place."""
        sm_id = record[0]
        cache = self.caches[sm_id]
        acc = MemAccess(
            block_addr=record[1],
            pc=record[2],
            insn_id=self._insn_id(record[2]),
            is_write=record[3],
            warp_id=record[4] if len(record) > 4 else 0,
            sm_id=sm_id,
        )
        if self.non_blocking:
            self._access_non_blocking(cache, acc, sm_id)
        else:
            self._access_blocking(cache, acc, sm_id)
        self.replayed_records += 1
        self.replayed_per_sm[sm_id] += 1

    def _access_blocking(self, cache: L1DCache, acc: MemAccess, sm_id: int) -> None:
        result = cache.access(acc)
        retries = 0
        while result.is_stall:
            retries += 1
            if retries > MAX_STALL_RETRIES:
                raise ReplayStallError(
                    f"SM{sm_id} access to block {acc.block_addr:#x} stalled "
                    f"{retries} times ({result.stall_reason}) without "
                    f"converging"
                )
            result = cache.access(acc)
        # Immediate service: drain queued fetches/write-throughs and fill
        # reserved lines, so no RESERVED state survives to the next access.
        while not cache.miss_queue.is_empty:
            fetch = cache.miss_queue.pop()
            if fetch.is_write:
                cache.stats.sent_writes += 1
                self.sent_writes += 1
            else:
                cache.stats.sent_fetches += 1
                self.sent_fetches += 1
                cache.fill(fetch.block_addr, 0)

    def _access_non_blocking(
        self, cache: L1DCache, acc: MemAccess, sm_id: int
    ) -> None:
        """Windowed service: fetches stay outstanding for
        :data:`NB_FILL_WINDOW` accesses, so RESERVED lines survive,
        secondary misses merge and MSHR/miss-queue pressure builds.
        Fills apply strictly in issue order (FIFO), keeping wakeups
        deterministic; a stalled access drains the oldest outstanding
        fill early, modelling the pipeline waiting for the response
        that frees its resource."""
        outstanding = self._nb_outstanding[sm_id]
        seq = self._nb_seq[sm_id]
        while outstanding and outstanding[0][0] + NB_FILL_WINDOW <= seq:
            cache.fill(outstanding.popleft()[1], 0)
        result = cache.access(acc)
        retries = 0
        while result.is_stall:
            retries += 1
            if retries > MAX_STALL_RETRIES:
                raise ReplayStallError(
                    f"SM{sm_id} access to block {acc.block_addr:#x} stalled "
                    f"{retries} times ({result.stall_reason}) without "
                    f"converging"
                )
            if outstanding:
                cache.fill(outstanding.popleft()[1], 0)
            result = cache.access(acc)
        while not cache.miss_queue.is_empty:
            fetch = cache.miss_queue.pop()
            if fetch.is_write:
                cache.stats.sent_writes += 1
                self.sent_writes += 1
            else:
                cache.stats.sent_fetches += 1
                self.sent_fetches += 1
                outstanding.append((seq, fetch.block_addr))
        self._nb_seq[sm_id] = seq + 1

    def flush(self) -> None:
        """Apply every fill still outstanding (end of stream)."""
        for sm_id, outstanding in enumerate(self._nb_outstanding):
            cache = self.caches[sm_id]
            while outstanding:
                cache.fill(outstanding.popleft()[1], 0)

    def run(self, records: Iterable[TraceRecord]) -> SimResult:
        for record in records:
            self.access(record)
        self.flush()
        return self.result()

    # -- collection ----------------------------------------------------

    def result(self) -> SimResult:
        total = L1DStats()
        per_sm = []
        for cache in self.caches:
            s = cache.stats
            per_sm.append(s.as_dict())
            total.loads += s.loads
            total.stores += s.stores
            total.hits += s.hits
            total.hit_reserved += s.hit_reserved
            total.misses += s.misses
            total.bypasses += s.bypasses
            total.write_hits += s.write_hits
            total.write_misses += s.write_misses
            total.evictions += s.evictions
            total.write_evicts += s.write_evicts
            total.fills += s.fills
            total.sent_fetches += s.sent_fetches
            total.sent_writes += s.sent_writes
            for reason, count in s.stalls.items():
                total.stalls[reason] = total.stalls.get(reason, 0) + count

        policy_total: Dict[str, float] = {}
        for cache in self.caches:
            for key, value in cache.policy.stats().items():
                policy_total[key] = policy_total.get(key, 0) + value

        return SimResult(
            cycles=0,
            thread_insns=0,
            warp_insns=0,
            l1d=total,
            interconnect={
                "total_requests": self.sent_fetches + self.sent_writes,
                "read_requests": self.sent_fetches,
                "write_requests": self.sent_writes,
            },
            l2={},
            dram={},
            policy=policy_total,
            per_sm_l1d=per_sm,
            ldst_stall_cycles=0,
            truncated=False,
        )


# ----------------------------------------------------------------------
# front doors
# ----------------------------------------------------------------------

def _resolve(scheme: Union[str, CachePolicy, None], config: GPUConfig,
             **policy_kwargs) -> Tuple[GPUConfig, object]:
    """Map a scheme name to (possibly resized config, policy factory),
    mirroring :func:`repro.experiments.runner.build_simulator`."""
    if callable(scheme) and not isinstance(scheme, str):
        return config, scheme
    name = scheme or "baseline"
    if name in ("32kb", "64kb"):
        config = config.with_l1d_size_kb(int(name[:-2]))
        name = "baseline"
    return config, (lambda: make_policy(name, **policy_kwargs))


def _make_engine(engine: str, config: GPUConfig, factory) -> "ReplayEngine":
    """Build the selected replay engine (both share run()/result())."""
    if engine == "fast":
        # Imported lazily: repro.fastsim.replay imports this module.
        from repro.fastsim.replay import FastReplayEngine

        return FastReplayEngine(config, factory)  # type: ignore[return-value]
    if engine == "batch":
        # Imported lazily for the same reason (batchsim builds on both
        # this module and repro.fastsim.replay).
        from repro.batchsim.engine import BatchReplayEngine

        return BatchReplayEngine(config, factory)  # type: ignore[return-value]
    if engine != "reference":
        raise ValueError(
            f"unknown engine {engine!r}; expected 'reference', 'fast', "
            f"or 'batch'"
        )
    return ReplayEngine(config, factory)


def replay_records(
    records: Iterable[TraceRecord],
    config: GPUConfig,
    scheme: Union[str, object] = "baseline",
    engine: str = "reference",
    **policy_kwargs,
) -> SimResult:
    """Replay an in-memory record stream through one scheme."""
    config, factory = _resolve(scheme, config, **policy_kwargs)
    return _make_engine(engine, config, factory).run(records)


def replay_trace(
    trace: Union[TraceReader, str],
    scheme: Union[str, object] = "baseline",
    config: Optional[GPUConfig] = None,
    engine: str = "reference",
    **policy_kwargs,
) -> SimResult:
    """Replay a recorded trace file through one scheme.

    ``config`` defaults to the machine shape stored in the trace header
    (``num_sms`` SMs of the Table 1 core); when given, its line size
    must match the trace's — block addresses are line-granular.
    """
    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    if config is None:
        config = GPUConfig().scaled(reader.num_sms)
    if config.num_sms < reader.num_sms:
        raise ValueError(
            f"trace has {reader.num_sms} SM streams but config provides "
            f"only {config.num_sms} SMs"
        )
    if config.l1d.line_size != reader.line_size:
        raise ValueError(
            f"line-size mismatch: trace recorded at {reader.line_size} B, "
            f"config uses {config.l1d.line_size} B"
        )
    config, factory = _resolve(scheme, config, **policy_kwargs)
    replay_engine = _make_engine(engine, config, factory)
    result = replay_engine.run(iter(reader))
    replayed = replay_engine.replayed_per_sm[: reader.num_sms]
    if replayed != reader.records_per_sm:
        bad = [
            f"SM{sm}: header says {want}, replayed {got}"
            for sm, (want, got) in enumerate(zip(reader.records_per_sm, replayed))
            if want != got
        ]
        raise TraceFormatError(
            f"{reader.path}: replayed record counts disagree with the "
            f"trace header ({'; '.join(bad)}) — the trace is corrupt or "
            f"its header was edited"
        )
    return result


def replay_workload(
    workload: Workload,
    config: Optional[GPUConfig] = None,
    scheme: Union[str, object] = "baseline",
    engine: str = "reference",
    **policy_kwargs,
) -> SimResult:
    """The functional path: drive a scheme from the live access stream
    (no trace file).  Bit-identical to recording then replaying."""
    from repro.trace.record import stream_records

    config = config or GPUConfig()
    return replay_records(
        stream_records(workload, config), config, scheme, engine=engine,
        **policy_kwargs
    )
