"""Trace capture: persist a workload's coalesced L1D access stream.

Two capture points exist:

* :func:`record_workload` — the functional path.  Replays the workload
  through :func:`repro.experiments.cachesim.interleaved_accesses` (the
  same GPU-like interleaving Figs. 3/4/7 characterise) and writes every
  coalesced request.  This is the canonical capture: replaying the
  resulting trace through a policy is bit-identical to driving that
  policy from the live stream.
* :class:`TimingTapRecorder` — hooks the LD/ST path of a running
  :class:`~repro.gpu.simulator.GpuSimulator` via the L1D access tap, so
  a *timing* run's stream (which reflects scheduler and MSHR pressure)
  can be captured as well.  Timing-captured traces are scheme-coloured:
  replaying one is only meaningful against the scheme that produced it
  (see EXPERIMENTS.md, "Trace-driven replay").

Module-level :data:`RECORDER_STATS` counts captures so tests and the
replay sweep can assert "recorded exactly once" on counters instead of
wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.experiments.cachesim import interleaved_accesses
from repro.experiments.store import stream_fingerprint, trace_key
from repro.gpu.config import GPUConfig
from repro.trace.format import TraceReader, TraceRecord, TraceWriter
from repro.workloads import make_workload
from repro.workloads.base import Workload


@dataclass
class RecorderStats:
    """How many streams were actually generated (vs. found on disk)."""

    captures: int = 0
    records: int = 0

    def reset(self) -> None:
        self.captures = 0
        self.records = 0


#: Process-wide capture counters (reset freely in tests).
RECORDER_STATS = RecorderStats()


def stream_records(
    workload: Workload, config: GPUConfig
) -> Iterator[TraceRecord]:
    """The workload's access stream as :class:`TraceRecord` values."""
    for sm, block, pc, is_write, warp in interleaved_accesses(workload, config):
        yield TraceRecord(sm, block, pc, is_write, warp)


def capture_records(
    workload: Workload, config: GPUConfig
) -> List[TraceRecord]:
    """Materialise the stream in memory (small workloads / tests)."""
    records = list(stream_records(workload, config))
    RECORDER_STATS.captures += 1
    RECORDER_STATS.records += len(records)
    return records


def workload_meta(
    workload: Workload, config: GPUConfig
) -> Dict[str, Any]:
    """Header metadata identifying a registry workload's capture, rich
    enough for ``repro trace replay --verify`` to regenerate the stream."""
    return {
        "source": "registry",
        "abbr": workload.meta.abbr,
        "scale": workload.scale,
        "seed": workload.seed,
        "trace_key": trace_key(
            workload.meta.abbr, config, scale=workload.scale, seed=workload.seed
        ),
    }


def record_workload(
    workload: Workload,
    config: Optional[GPUConfig] = None,
    path=None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Capture ``workload``'s functional access stream to ``path``."""
    config = config or GPUConfig()
    if path is None:
        raise ValueError("record_workload needs an output path")
    header_meta = workload_meta(workload, config)
    header_meta.update(meta or {})
    writer = TraceWriter(
        path,
        num_sms=config.num_sms,
        line_size=config.l1d.line_size,
        meta=header_meta,
        stream=stream_fingerprint(
            workload.meta.abbr, config,
            scale=workload.scale, seed=workload.seed,
        ),
    )
    count = 0
    with writer:
        for rec in stream_records(workload, config):
            writer.append(*rec)
            count += 1
    RECORDER_STATS.captures += 1
    RECORDER_STATS.records += count
    return Path(path)


def record_app(
    abbr: str,
    path,
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> Path:
    """Record a Table 2 application by abbreviation (CLI entry point)."""
    config = config or GPUConfig()
    workload = make_workload(abbr, scale, seed=seed)
    return record_workload(workload, config, path)


# ----------------------------------------------------------------------
# timing-path capture (LD/ST tap)
# ----------------------------------------------------------------------

class TimingTapRecorder:
    """Capture the L1D-visible stream of a timing simulation.

    Install *before* :meth:`GpuSimulator.run`::

        sim = GpuSimulator(kernels, config, policy_factory=...)
        recorder = TimingTapRecorder(sim)
        sim.run()
        recorder.write("run.rptr", meta={"abbr": "BFS"})

    The tap fires once per *completed* access (stalled retries collapse
    to their completion), which is exactly the stream the cache counters
    are defined over.
    """

    def __init__(self, sim) -> None:
        self.config: GPUConfig = sim.config
        self.records: List[List[TraceRecord]] = [
            [] for _ in range(sim.config.num_sms)
        ]
        sim.attach_l1d_tap(self._on_access)

    def _on_access(self, access, outcome) -> None:
        self.records[access.sm_id].append(
            TraceRecord(
                access.sm_id,
                access.block_addr,
                access.pc,
                access.is_write,
                max(access.warp_id, 0),  # store-path accesses carry -1
            )
        )

    @property
    def total_records(self) -> int:
        return sum(len(r) for r in self.records)

    def write(self, path, meta: Optional[Dict[str, Any]] = None) -> Path:
        header_meta = {"source": "timing_tap"}
        header_meta.update(meta or {})
        writer = TraceWriter(
            path,
            num_sms=self.config.num_sms,
            line_size=self.config.l1d.line_size,
            meta=header_meta,
        )
        with writer:
            for per_sm in self.records:
                writer.extend(per_sm)
        RECORDER_STATS.captures += 1
        RECORDER_STATS.records += self.total_records
        return Path(path)


def open_trace(path) -> TraceReader:
    """Alias kept next to the recorder for symmetric import sites."""
    return TraceReader(path)
