"""repro.trace — memory-trace capture & replay.

The trace-driven evaluation layer: capture a workload's coalesced L1D
access stream once (binary on-disk format, per-SM streams, varint+gzip),
then replay it through any cache-management scheme without regenerating
the workload or re-running the GPU front end.

* :mod:`repro.trace.format` — :class:`TraceWriter` / :class:`TraceReader`
  and the on-disk layout;
* :mod:`repro.trace.record` — capture from the functional interleaving
  or from a timing simulation's LD/ST tap;
* :mod:`repro.trace.replay` — the policy replay engine;
* :mod:`repro.trace.adapters` — import external text/CSV traces and
  register them as first-class workloads;
* :mod:`repro.trace.sweep` — record-once / replay-per-scheme sweeps.

Quick start::

    from repro.trace import record_app, replay_trace

    record_app("BFS", "bfs.rptr", scale=0.5)
    for scheme in ("baseline", "stall_bypass", "global_protection", "dlp"):
        print(scheme, replay_trace("bfs.rptr", scheme).l1d.hit_rate)
"""

from repro.trace.format import (
    FORMAT_VERSION,
    TraceFormatError,
    TraceReader,
    TraceRecord,
    TraceWriter,
    read_trace,
    write_trace,
)
from repro.trace.record import (
    RECORDER_STATS,
    TimingTapRecorder,
    capture_records,
    record_app,
    record_workload,
    stream_records,
)
from repro.trace.replay import (
    ReplayEngine,
    ReplayStallError,
    replay_records,
    replay_trace,
    replay_workload,
)
from repro.trace.adapters import (
    TraceWorkload,
    import_text_trace,
    iter_text_records,
    make_trace_workload_class,
)
from repro.trace.sweep import ReplaySweepExecutor, ReplaySweepStats, TraceStore

__all__ = [
    "FORMAT_VERSION",
    "TraceFormatError",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "RECORDER_STATS",
    "TimingTapRecorder",
    "capture_records",
    "record_app",
    "record_workload",
    "stream_records",
    "ReplayEngine",
    "ReplayStallError",
    "replay_records",
    "replay_trace",
    "replay_workload",
    "TraceWorkload",
    "import_text_trace",
    "iter_text_records",
    "make_trace_workload_class",
    "ReplaySweepExecutor",
    "ReplaySweepStats",
    "TraceStore",
]
