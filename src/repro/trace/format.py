"""Binary on-disk format for L1D access traces.

One trace file holds the coalesced L1D access stream of one workload
run, split into per-SM streams (L1Ds are private per SM, so per-SM order
is the whole cache-visible ordering).  The layout is built for two
access patterns:

* **O(1) metadata inspection** — magic, version and a JSON header sit at
  the front; ``repro trace info`` never touches the record body.
* **Streaming iteration** — each SM stream is an independently
  gzip-framed section of varint-packed records, decoded incrementally,
  so replay never materialises a trace in memory.

Layout::

    magic   4 bytes   b"RPTR"
    version u16 LE    FORMAT_VERSION (readers reject anything newer)
    hdrlen  u32 LE
    header  JSON      {"meta": ..., "stream": ..., "records_per_sm": [...],
                       "total_records": N}
    section x num_sms:
        complen u64 LE
        blob    gzip(varint-packed records of that SM)

Record packing (columnar-in-row order, per record): zigzag varint of the
block-address delta, zigzag varint of the PC delta, plain varint of
``warp_id << 1 | is_write``.  Deltas reset at each SM-stream start, so
sections decode independently.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional

MAGIC = b"RPTR"
FORMAT_VERSION = 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Decoder read granularity; small enough to stream, large enough to
#: amortise the gzip call overhead.
_CHUNK = 1 << 16


class TraceFormatError(RuntimeError):
    """The file is not a trace, is truncated, or is too new to read."""


class TraceRecord(NamedTuple):
    """One coalesced L1D access, as captured at the LD/ST boundary."""

    sm_id: int
    block_addr: int
    pc: int
    is_write: bool
    warp_id: int = 0


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------

def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _append_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


class _VarintStream:
    """Incremental uvarint decoder over a chunked byte source."""

    def __init__(self, fileobj) -> None:
        self._file = fileobj
        self._buf = b""
        self._pos = 0

    def _refill(self) -> bool:
        chunk = self._file.read(_CHUNK)
        if not chunk:
            return False
        self._buf = self._buf[self._pos:] + chunk
        self._pos = 0
        return True

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self._pos >= len(self._buf) and not self._refill():
                raise TraceFormatError(
                    "truncated trace: record stream ended mid-varint"
                )
            byte = self._buf[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise TraceFormatError("corrupt trace: varint too long")

    def at_eof(self) -> bool:
        """True when the source has no further bytes (consumes nothing)."""
        return self._pos >= len(self._buf) and not self._refill()


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------

class TraceWriter:
    """Accumulate records and emit one trace file atomically on close.

    Per-SM streams are packed as records arrive (constant memory per
    record, not per trace replayed later); the file is written with a
    tmp-and-replace so readers never observe a torn trace.
    """

    def __init__(
        self,
        path,
        num_sms: int,
        line_size: int = 128,
        meta: Optional[Dict[str, Any]] = None,
        stream: Optional[Dict[str, Any]] = None,
    ) -> None:
        if num_sms < 1:
            raise ValueError("trace needs at least one SM stream")
        self.path = Path(path)
        self.num_sms = num_sms
        self.line_size = line_size
        self.meta = dict(meta or {})
        self.stream = dict(stream or {})
        self._bufs: List[bytearray] = [bytearray() for _ in range(num_sms)]
        self._prev_block: List[int] = [0] * num_sms
        self._prev_pc: List[int] = [0] * num_sms
        self.records_per_sm: List[int] = [0] * num_sms
        self._closed = False

    def append(
        self,
        sm_id: int,
        block_addr: int,
        pc: int,
        is_write: bool,
        warp_id: int = 0,
    ) -> None:
        if not 0 <= sm_id < self.num_sms:
            raise ValueError(
                f"sm_id {sm_id} out of range for a {self.num_sms}-SM trace"
            )
        if block_addr < 0 or pc < 0 or warp_id < 0:
            raise ValueError("trace fields must be non-negative")
        buf = self._bufs[sm_id]
        _append_uvarint(buf, _zigzag(block_addr - self._prev_block[sm_id]))
        _append_uvarint(buf, _zigzag(pc - self._prev_pc[sm_id]))
        _append_uvarint(buf, (warp_id << 1) | int(bool(is_write)))
        self._prev_block[sm_id] = block_addr
        self._prev_pc[sm_id] = pc
        self.records_per_sm[sm_id] += 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for rec in records:
            self.append(rec[0], rec[1], rec[2], rec[3], rec[4] if len(rec) > 4 else 0)

    @property
    def total_records(self) -> int:
        return sum(self.records_per_sm)

    def header(self) -> Dict[str, Any]:
        stream = {"line_size": self.line_size, "num_sms": self.num_sms}
        stream.update(self.stream)
        return {
            "meta": self.meta,
            "stream": stream,
            "records_per_sm": list(self.records_per_sm),
            "total_records": self.total_records,
        }

    def close(self) -> Path:
        if self._closed:
            return self.path
        header = json.dumps(
            self.header(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + f".tmp.{os.getpid()}")
        with open(tmp, "wb") as f:
            f.write(MAGIC)
            f.write(_U16.pack(FORMAT_VERSION))
            f.write(_U32.pack(len(header)))
            f.write(header)
            for buf in self._bufs:
                blob = gzip.compress(bytes(buf), compresslevel=6, mtime=0)
                f.write(_U64.pack(len(blob)))
                f.write(blob)
        os.replace(tmp, self.path)
        self._closed = True
        return self.path

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        # on error: leave no file behind (the tmp never reached `path`)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------

class TraceReader:
    """Open a trace file; header parsing only — records stream on demand."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as f:
            magic = f.read(4)
            if magic != MAGIC:
                raise TraceFormatError(
                    f"{self.path}: not a repro trace (bad magic {magic!r})"
                )
            version_raw = f.read(2)
            if len(version_raw) < 2:
                raise TraceFormatError(f"{self.path}: truncated header")
            self.version = _U16.unpack(version_raw)[0]
            if self.version > FORMAT_VERSION:
                raise TraceFormatError(
                    f"{self.path}: format version {self.version} is newer "
                    f"than this reader (supports <= {FORMAT_VERSION})"
                )
            hdrlen_raw = f.read(4)
            if len(hdrlen_raw) < 4:
                raise TraceFormatError(f"{self.path}: truncated header")
            hdrlen = _U32.unpack(hdrlen_raw)[0]
            header_raw = f.read(hdrlen)
            if len(header_raw) < hdrlen:
                raise TraceFormatError(f"{self.path}: truncated header")
            try:
                self.header: Dict[str, Any] = json.loads(header_raw)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{self.path}: corrupt header JSON ({exc})"
                ) from None
            self._body_offset = f.tell()
        stream = self.header.get("stream", {})
        self.num_sms: int = int(stream.get("num_sms", 0))
        self.line_size: int = int(stream.get("line_size", 128))
        self.meta: Dict[str, Any] = dict(self.header.get("meta", {}))
        self.records_per_sm: List[int] = [
            int(n) for n in self.header.get("records_per_sm", [])
        ]
        self.total_records: int = int(self.header.get("total_records", 0))
        if len(self.records_per_sm) != self.num_sms:
            raise TraceFormatError(
                f"{self.path}: header lists {len(self.records_per_sm)} SM "
                f"streams but declares num_sms={self.num_sms}"
            )
        self._section_offsets: Optional[List[int]] = None

    # -- metadata ------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """Everything ``repro trace info`` prints; O(1) in trace length."""
        return {
            "path": str(self.path),
            "format_version": self.version,
            "file_bytes": self.path.stat().st_size,
            "num_sms": self.num_sms,
            "line_size": self.line_size,
            "total_records": self.total_records,
            "records_per_sm": list(self.records_per_sm),
            "meta": dict(self.meta),
            "stream": dict(self.header.get("stream", {})),
        }

    # -- record access -------------------------------------------------

    def _sections(self) -> List[int]:
        """Byte offset of each SM section's length prefix (lazy scan)."""
        if self._section_offsets is None:
            offsets = []
            with open(self.path, "rb") as f:
                f.seek(0, io.SEEK_END)
                end = f.tell()
                pos = self._body_offset
                for sm in range(self.num_sms):
                    if pos + 8 > end:
                        raise TraceFormatError(
                            f"{self.path}: truncated trace — section for "
                            f"SM{sm} is missing"
                        )
                    offsets.append(pos)
                    f.seek(pos)
                    (complen,) = _U64.unpack(f.read(8))
                    pos += 8 + complen
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: truncated trace — last section runs "
                        f"past end of file"
                    )
            self._section_offsets = offsets
        return self._section_offsets

    def sm_payload(self, sm_id: int) -> bytes:
        """One SM section's raw (still gzip-compressed) payload.

        Bulk consumers — the batch engine's vectorized varint decoder —
        decompress and decode the whole section at once instead of
        streaming record by record through :meth:`sm_stream`."""
        if not 0 <= sm_id < self.num_sms:
            raise IndexError(f"sm_id {sm_id} out of range")
        offset = self._sections()[sm_id]
        with open(self.path, "rb") as f:
            f.seek(offset)
            (complen,) = _U64.unpack(f.read(8))
            section = f.read(complen)
            if len(section) < complen:
                raise TraceFormatError(
                    f"{self.path}: truncated trace — SM{sm_id} section "
                    f"short by {complen - len(section)} bytes"
                )
        return section

    def sm_stream(self, sm_id: int) -> Iterator[TraceRecord]:
        """Stream one SM's records in recorded order."""
        section = self.sm_payload(sm_id)
        expected = self.records_per_sm[sm_id]
        try:
            gz = gzip.GzipFile(fileobj=io.BytesIO(section), mode="rb")
            stream = _VarintStream(gz)
            prev_block = 0
            prev_pc = 0
            for _ in range(expected):
                block = prev_block + _unzigzag(stream.read_uvarint())
                pc = prev_pc + _unzigzag(stream.read_uvarint())
                packed = stream.read_uvarint()
                prev_block, prev_pc = block, pc
                yield TraceRecord(sm_id, block, pc, bool(packed & 1), packed >> 1)
            if not stream.at_eof():
                raise TraceFormatError(
                    f"{self.path}: SM{sm_id} section holds more than the "
                    f"{expected} records the header declares — "
                    f"records_per_sm does not match the stream"
                )
        except (EOFError, OSError, gzip.BadGzipFile) as exc:
            raise TraceFormatError(
                f"{self.path}: corrupt SM{sm_id} section ({exc})"
            ) from None

    def __iter__(self) -> Iterator[TraceRecord]:
        """All records, SM streams concatenated in SM order.

        Per-SM order is the only cache-visible ordering (L1Ds are
        private), so this is the canonical replay order.
        """
        for sm in range(self.num_sms):
            yield from self.sm_stream(sm)

    def __len__(self) -> int:
        return self.total_records


# ----------------------------------------------------------------------
# convenience
# ----------------------------------------------------------------------

def write_trace(
    path,
    records: Iterable[TraceRecord],
    num_sms: int,
    line_size: int = 128,
    meta: Optional[Dict[str, Any]] = None,
    stream: Optional[Dict[str, Any]] = None,
) -> Path:
    with TraceWriter(path, num_sms, line_size, meta=meta, stream=stream) as w:
        w.extend(records)
    return Path(path)


def read_trace(path) -> TraceReader:
    return TraceReader(path)
