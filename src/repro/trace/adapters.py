"""Adapters: foreign access traces in, first-class workloads out.

Two layers:

* :func:`import_text_trace` converts a plain-text / CSV access trace
  (the interchange shape ATA-Cache-style shared-cache studies and the
  ML-caching preprints publish) into the native binary format, so any
  externally captured stream can be replayed through the four policies.
* :class:`TraceWorkload` wraps a native trace file as a
  :class:`~repro.workloads.base.Workload`: each SM stream becomes one
  single-warp CTA whose :class:`~repro.gpu.isa.MemOp` sequence re-emits
  the recorded line addresses.  Registered via
  :func:`repro.workloads.registry.register_trace_workload`, an imported
  trace then flows through every registry-driven path — ``repro run``,
  sweeps, reuse profiling — like a Table 2 benchmark.

Text format, one record per line (comma- or whitespace-separated)::

    sm_id  block_addr  pc  is_write  [warp_id]

``block_addr`` and ``pc`` accept decimal or 0x-hex; ``is_write`` accepts
0/1, R/W, LD/ST (case-insensitive).  Blank lines and ``#`` comments are
skipped; an optional header line naming the columns is detected and
dropped.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.gpu.isa import MemOp
from repro.gpu.kernel import Kernel
from repro.trace.format import (
    TraceFormatError,
    TraceReader,
    TraceRecord,
    write_trace,
)
from repro.workloads.base import Workload, WorkloadMeta

_WRITE_TOKENS = {"1", "w", "st", "store", "true", "wr"}
_READ_TOKENS = {"0", "r", "ld", "load", "false", "rd"}


def _parse_int(token: str, line_no: int, column: str) -> int:
    try:
        return int(token, 0)  # accepts decimal and 0x-prefixed hex
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: cannot parse {column} from {token!r}"
        ) from None


def _parse_is_write(token: str, line_no: int) -> bool:
    lowered = token.lower()
    if lowered in _WRITE_TOKENS:
        return True
    if lowered in _READ_TOKENS:
        return False
    raise TraceFormatError(
        f"line {line_no}: cannot parse is_write from {token!r} "
        f"(expected 0/1, R/W or LD/ST)"
    )


def iter_text_records(lines: Iterable[str]) -> Iterator[TraceRecord]:
    """Parse text/CSV lines into records (see module docstring)."""
    for line_no, raw in enumerate(lines, start=1):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        fields = [f.strip() for f in text.replace(",", " ").split()]
        if line_no == 1 and not fields[0].lstrip("-").isdigit() \
                and not fields[0].lower().startswith("0x"):
            continue  # header row (column names)
        if len(fields) < 4:
            raise TraceFormatError(
                f"line {line_no}: expected at least 4 fields "
                f"(sm_id block_addr pc is_write [warp_id]), got {len(fields)}"
            )
        yield TraceRecord(
            sm_id=_parse_int(fields[0], line_no, "sm_id"),
            block_addr=_parse_int(fields[1], line_no, "block_addr"),
            pc=_parse_int(fields[2], line_no, "pc"),
            is_write=_parse_is_write(fields[3], line_no),
            warp_id=_parse_int(fields[4], line_no, "warp_id")
            if len(fields) > 4 else 0,
        )


def import_text_trace(
    src,
    dest,
    num_sms: Optional[int] = None,
    line_size: int = 128,
    meta: Optional[Dict[str, Any]] = None,
) -> TraceReader:
    """Convert a text/CSV trace at ``src`` into a native trace at ``dest``.

    ``num_sms`` defaults to ``max(sm_id) + 1`` over the input.  Returns a
    reader over the written trace.
    """
    src = Path(src)
    with open(src, "r", encoding="utf-8") as f:
        records = list(iter_text_records(f))
    if not records and num_sms is None:
        raise TraceFormatError(f"{src}: no records to import")
    inferred = max((r.sm_id for r in records), default=-1) + 1
    num_sms = num_sms if num_sms is not None else max(inferred, 1)
    if inferred > num_sms:
        raise TraceFormatError(
            f"{src}: records reference SM {inferred - 1} but num_sms={num_sms}"
        )
    header_meta = {"source": "import", "imported_from": src.name}
    header_meta.update(meta or {})
    write_trace(
        dest, records, num_sms=num_sms, line_size=line_size, meta=header_meta,
    )
    return TraceReader(dest)


# ----------------------------------------------------------------------
# trace-backed workloads
# ----------------------------------------------------------------------

class TraceWorkload(Workload):
    """A workload whose access structure *is* a recorded trace.

    Each SM stream becomes one CTA with a single warp; CTA ``i`` lands
    on SM ``i`` under the round-robin placement of both the functional
    interleaving and the timing dispatcher (when the machine has at
    least ``num_sms`` SMs), so per-SM access order — the only ordering
    the private L1Ds see — is reproduced exactly.  Every op re-emits one
    line address through a single active lane, so coalescing is the
    identity.
    """

    meta = WorkloadMeta(
        name="Trace-backed workload",
        abbr="TRACE",
        suite="imported",
        paper_type="CI",
        paper_input="n/a",
        scaled_input="recorded trace",
    )

    def __init__(self, path, scale: float = 1.0):
        # `scale` is accepted for registry compatibility; a recorded
        # stream has no free input dimension to scale.
        super().__init__(scale=1.0)
        self.path = Path(path)
        self.reader = TraceReader(self.path)
        self._line_size = self.reader.line_size

    def build_kernels(self) -> List[Kernel]:
        reader = self.reader
        line = self._line_size

        def trace_fn(cta_id: int, warp_id: int) -> Iterator[MemOp]:
            for rec in reader.sm_stream(cta_id):
                addr = np.array([rec.block_addr * line], dtype=np.int64)
                yield MemOp(rec.is_write, rec.pc, addr)

        return [
            Kernel(
                name=f"trace:{self.path.stem}",
                num_ctas=reader.num_sms,
                warps_per_cta=1,
                trace_fn=trace_fn,
            )
        ]


def make_trace_workload_class(abbr: str, path, name: Optional[str] = None):
    """Build a registry-compatible Workload subclass bound to ``path``."""
    trace_path = Path(path)
    reader = TraceReader(trace_path)  # validate eagerly: fail at registration

    class _BoundTraceWorkload(TraceWorkload):
        meta = WorkloadMeta(
            name=name or f"Imported trace {trace_path.stem}",
            abbr=abbr.upper(),
            suite="imported",
            paper_type="CI",
            paper_input="n/a",
            scaled_input=f"{reader.total_records} recorded accesses",
        )

        def __init__(self, scale: float = 1.0):
            super().__init__(trace_path, scale=scale)

    _BoundTraceWorkload.__name__ = f"TraceWorkload_{abbr.upper()}"
    return _BoundTraceWorkload
