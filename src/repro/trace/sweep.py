"""Replay-mode sweeps: record each workload's stream once, replay it per
scheme.

A full (app x scheme) sweep through the timing simulator regenerates
the workload and re-runs the GPU front end for every cell even though
only the cache management differs — the coalesced access stream is
identical across schemes by construction.  This executor exploits that:
cells that differ only in scheme share one recorded trace (the trace key
hashes the *stream* identity, never the scheme — see
:func:`repro.experiments.store.stream_fingerprint`), so a 4-policy sweep
costs 1 capture + 4 replays instead of 4 full simulations.

Replay results resolve against the standard result store under
replay-mode keys (:func:`repro.experiments.store.replay_cell_key`), so
they warm-cache across invocations exactly like timing results while
never colliding with them.  All accounting is exposed as counters
(:class:`ReplaySweepStats` + the store's own stats) so tests assert
"1 capture + 4 replays" on counts, not wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover — typing only (lazy at runtime)
    from repro.batchsim.grid import GridAxis

from repro.experiments.store import (
    MemoryStore,
    replay_cell_key,
    trace_key,
)
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimResult
from repro.trace.format import TraceReader
from repro.trace.record import record_workload
from repro.trace.replay import replay_trace
from repro.workloads import make_workload


@dataclass
class ReplaySweepStats:
    """What the replay sweep actually did (the acceptance counters)."""

    recorded: int = 0      # traces captured this run
    trace_hits: int = 0    # traces found already on disk
    replayed: int = 0      # cells driven through the replay engine
    store_hits: int = 0    # cells resolved from the result store

    def as_dict(self) -> Dict[str, int]:
        return {
            "recorded": self.recorded,
            "trace_hits": self.trace_hits,
            "replayed": self.replayed,
            "store_hits": self.store_hits,
        }


class TraceStore:
    """Directory of recorded traces, content-addressed by stream key."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.rptr"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def ls(self) -> List[Dict[str, object]]:
        entries = []
        for path in sorted(self.root.glob("*.rptr")):
            try:
                reader = TraceReader(path)
            except Exception:  # foreign/torn file: list nothing for it
                continue
            entries.append({"key": path.stem, **reader.meta,
                            "records": reader.total_records})
        return entries

    def clear(self) -> int:
        count = 0
        for path in self.root.glob("*.rptr"):
            path.unlink()
            count += 1
        return count


class ReplaySweepExecutor:
    """Resolve an experiment grid via record-once / replay-per-scheme.

    Parameters
    ----------
    store:
        Result store for replayed cells (``MemoryStore`` by default;
        pass a :class:`~repro.experiments.store.ResultStore` to share
        replay results across invocations).
    trace_dir:
        Where recorded traces live.  ``None`` keeps captures in a
        private in-memory record list (no file layer); point at a
        directory to persist traces in the binary format and share them
        across invocations and with the ``repro trace`` verbs.
    engine:
        L1D implementation used for replays (``reference`` or ``fast``).
        The engines are bit-identical, so the choice never enters trace
        keys or replay-result store keys — results computed by either
        resolve the same entries.
    """

    def __init__(self, store=None, trace_dir=None,
                 config: Optional[GPUConfig] = None,
                 engine: str = "reference") -> None:
        self.store = store if store is not None else MemoryStore()
        self.traces = TraceStore(trace_dir) if trace_dir is not None else None
        self._memory_traces: Dict[str, List] = {}
        self.config = config
        self.engine = engine
        self.stats = ReplaySweepStats()

    # ------------------------------------------------------------------

    def _resolved_config(self, num_sms: int) -> GPUConfig:
        return self.config if self.config is not None \
            else GPUConfig().scaled(num_sms)

    def _get_or_record(self, abbr: str, config: GPUConfig,
                       scale: float, seed: int):
        """Return something replayable for this stream, capturing it at
        most once per key."""
        key = trace_key(abbr, config, scale=scale, seed=seed)
        if self.traces is not None:
            path = self.traces.path_for(key)
            if path.exists():
                self.stats.trace_hits += 1
            else:
                workload = make_workload(abbr, scale, seed=seed)
                record_workload(workload, config, path)
                self.stats.recorded += 1
            return TraceReader(path)
        records = self._memory_traces.get(key)
        if records is not None:
            self.stats.trace_hits += 1
        else:
            from repro.trace.record import capture_records

            workload = make_workload(abbr, scale, seed=seed)
            records = capture_records(workload, config)
            self._memory_traces[key] = records
            self.stats.recorded += 1
        return records

    def _cell_meta(self, abbr: str, scheme: str, config: GPUConfig,
                   scale: float, seed: int) -> Dict[str, object]:
        meta: Dict[str, object] = {
            "abbr": abbr, "scheme": scheme, "mode": "replay",
            "num_sms": config.num_sms, "scale": scale, "seed": seed,
        }
        if config.l1d.non_blocking:
            meta["non_blocking"] = True
        return meta

    def run_cell(
        self,
        abbr: str,
        scheme: str,
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        **policy_kwargs,
    ) -> SimResult:
        abbr = abbr.upper()
        config = self._resolved_config(num_sms)
        key = replay_cell_key(
            abbr, scheme, config, scale=scale, seed=seed,
            policy_kwargs=policy_kwargs,
        )
        cached = self.store.get(key)
        if cached is not None:
            self.stats.store_hits += 1
            return cached
        source = self._get_or_record(abbr, config, scale, seed)
        if isinstance(source, TraceReader):
            result = replay_trace(source, scheme, config,
                                  engine=self.engine, **policy_kwargs)
        else:
            from repro.trace.replay import replay_records

            result = replay_records(iter(source), config, scheme,
                                    engine=self.engine, **policy_kwargs)
        self.stats.replayed += 1
        self.store.put(key, result,
                       meta=self._cell_meta(abbr, scheme, config, scale, seed))
        return result

    def _run_cells_batched(
        self,
        abbr: str,
        cells: Sequence[tuple],
        num_sms: int,
        scale: float,
        seed: int,
    ) -> List[SimResult]:
        """Resolve many (scheme, policy_kwargs) cells of one app through
        one :func:`~repro.batchsim.engine.replay_batch` pass.

        Store interaction is cell-for-cell identical to
        :meth:`run_cell`: same keys, same meta, same results — a batch
        sweep's store is byte-identical to the serial executor's, only
        the accounting (one decode, N lanes) differs.
        """
        config = self._resolved_config(num_sms)
        results: Dict[int, SimResult] = {}
        missing: List[tuple] = []
        for idx, (scheme, policy_kwargs) in enumerate(cells):
            key = replay_cell_key(
                abbr, scheme, config, scale=scale, seed=seed,
                policy_kwargs=policy_kwargs,
            )
            cached = self.store.get(key)
            if cached is not None:
                self.stats.store_hits += 1
                results[idx] = cached
            else:
                missing.append((idx, key, scheme, policy_kwargs))
        if missing:
            from repro.batchsim.engine import replay_batch

            source = self._get_or_record(abbr, config, scale, seed)
            lanes = [(scheme, kwargs) for _, _, scheme, kwargs in missing]
            replayed = replay_batch(source, lanes, config)
            self.stats.replayed += len(lanes)
            for (idx, key, scheme, _), result in zip(missing, replayed):
                self.store.put(
                    key, result,
                    meta=self._cell_meta(abbr, scheme, config, scale, seed),
                )
                results[idx] = result
        return [results[idx] for idx in range(len(cells))]

    def run_sweep(
        self,
        apps: Sequence[str],
        schemes: Sequence[str],
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        **policy_kwargs,
    ) -> Dict[str, Dict[str, SimResult]]:
        """The full app x scheme matrix as ``{app: {scheme: result}}``.

        Iteration is app-major so each app's trace is captured exactly
        once and immediately reused by every scheme.  Under
        ``engine="batch"`` each app's uncached schemes replay as lanes
        of a single batch pass (one decode, shared set partitions)."""
        if self.engine == "batch":
            return {
                app.upper(): dict(zip(
                    schemes,
                    self._run_cells_batched(
                        app.upper(),
                        [(scheme, dict(policy_kwargs)) for scheme in schemes],
                        num_sms, scale, seed,
                    ),
                ))
                for app in apps
            }
        return {
            app.upper(): {
                scheme: self.run_cell(
                    app, scheme, num_sms=num_sms, scale=scale, seed=seed,
                    **policy_kwargs,
                )
                for scheme in schemes
            }
            for app in apps
        }

    def run_grid(
        self,
        app: str,
        scheme: str,
        axes: Sequence["GridAxis"],
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        **base_kwargs,
    ) -> "Dict[str, SimResult]":
        """A Fig. 9-style frontier map: one app, one scheme, a cross
        product of policy-knob axes, as ``{cell_label: result}``.

        Every grid point stores under its own replay cell key (the
        policy kwargs enter the key), so grids warm-cache incrementally
        and across engines.  Under ``engine="batch"`` all uncached
        points replay as lanes of one batch pass; other engines fall
        back to one :meth:`run_cell` per point.
        """
        from repro.batchsim.grid import cell_label, expand_grid

        abbr = app.upper()
        combos = expand_grid(list(axes))
        cells = [(scheme, {**base_kwargs, **combo}) for combo in combos]
        if self.engine == "batch":
            replayed = self._run_cells_batched(
                abbr, cells, num_sms, scale, seed)
        else:
            replayed = [
                self.run_cell(abbr, scheme, num_sms=num_sms, scale=scale,
                              seed=seed, **kwargs)
                for scheme, kwargs in cells
            ]
        return {
            cell_label(combo): result
            for combo, result in zip(combos, replayed)
        }
