"""Analytical sweep executor: answers grid cells without simulating.

``PredictSweepExecutor`` mirrors the :class:`ReplaySweepExecutor`
surface (``run_cell`` / ``run_sweep`` over an app x scheme grid) but
returns :class:`~repro.predict.model.Prediction` objects computed from
cached reuse profiles — one profiling pass per stream answers every
scheme and geometry.

Predictions are estimates, so this executor NEVER writes to a result
store: the exact-tier store keys (:func:`repro.experiments.store.
cell_key` / ``replay_cell_key``) stay reserved for simulated results,
and an analytical answer can never be mistaken for (or supersede) an
exact one.  The only cache here is the in-memory profile cache, keyed
by the same stream identity (:func:`repro.experiments.store.trace_key`)
the replay tier uses for its traces.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.experiments.store import trace_key
from repro.gpu.config import GPUConfig
from repro.predict.calibrate import Calibration, default_calibration
from repro.predict.model import Prediction, predict
from repro.predict.profile import (
    PredictProfile,
    profile_records,
    profile_trace,
    workload_insns,
)

_UNSET = object()


@dataclass
class PredictSweepStats:
    """What the analytical sweep actually did."""

    profiled: int = 0        # profiling passes run this invocation
    profile_hits: int = 0    # cells answered from a cached profile
    predicted: int = 0       # analytical answers produced
    prediction_hits: int = 0  # answers served from the prediction memo

    def as_dict(self) -> Dict[str, int]:
        return {
            "profiled": self.profiled,
            "profile_hits": self.profile_hits,
            "predicted": self.predicted,
            "prediction_hits": self.prediction_hits,
        }


class PredictSweepExecutor:
    """Resolve an experiment grid analytically: profile once per stream,
    predict per scheme.

    Parameters
    ----------
    calibration:
        A :class:`~repro.predict.calibrate.Calibration` to pin the
        model, ``None`` for the raw model, or omitted for the packaged
        default table.
    trace_dir:
        Optional directory of recorded ``.rptr`` traces (the replay
        tier's :class:`~repro.trace.sweep.TraceStore` layout).  When a
        cell's stream is already recorded there, the profile is built
        from the trace instead of re-capturing the workload.
    """

    def __init__(self, config: Optional[GPUConfig] = None,
                 calibration: Any = _UNSET,
                 trace_dir: Optional[Union[str, Path]] = None) -> None:
        self.config = config
        self.calibration: Optional[Calibration] = (
            default_calibration() if calibration is _UNSET else calibration
        )
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._profiles: Dict[str, PredictProfile] = {}
        # A prediction is a pure function of (stream, scheme, geometry,
        # policy kwargs), so repeated cells — the serve tier-0 steady
        # state — are answered from this memo in microseconds.
        self._predictions: Dict[tuple, Prediction] = {}
        self.stats = PredictSweepStats()

    # ------------------------------------------------------------------

    def _resolved_config(self, num_sms: int) -> GPUConfig:
        return self.config if self.config is not None \
            else GPUConfig().scaled(num_sms)

    def profile_for(self, abbr: str, config: GPUConfig,
                    scale: float, seed: int) -> PredictProfile:
        """The stream's profile, computed at most once per stream key."""
        key = trace_key(abbr, config, scale=scale, seed=seed)
        profile = self._profiles.get(key)
        if profile is not None:
            self.stats.profile_hits += 1
            return profile
        trace_path = (self.trace_dir / f"{key}.rptr"
                      if self.trace_dir is not None else None)
        if trace_path is not None and trace_path.exists():
            from repro.trace.format import TraceReader

            profile = profile_trace(TraceReader(trace_path), config)
        else:
            from repro.trace.record import capture_records
            from repro.workloads import make_workload

            workload = make_workload(abbr, scale, seed=seed)
            profile = profile_records(
                capture_records(workload, config), config)
            profile.insns = workload_insns(workload)
            profile.meta.update({
                "source": "registry", "abbr": abbr,
                "scale": scale, "seed": seed,
            })
        self.stats.profiled += 1
        self._profiles[key] = profile
        return profile

    def run_cell(
        self,
        abbr: str,
        scheme: str,
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        **policy_kwargs: Any,
    ) -> Prediction:
        abbr = abbr.upper()
        config = self._resolved_config(num_sms)
        memo_key = (abbr, scheme, num_sms, scale, seed,
                    tuple(sorted(policy_kwargs.items())))
        cached = self._predictions.get(memo_key)
        if cached is not None:
            self.stats.prediction_hits += 1
            return copy.deepcopy(cached)
        profile = self.profile_for(abbr, config, scale, seed)
        prediction = predict(profile, scheme, config,
                             calibration=self.calibration, **policy_kwargs)
        self.stats.predicted += 1
        self._predictions[memo_key] = copy.deepcopy(prediction)
        return prediction

    def run_sweep(
        self,
        apps: Sequence[str],
        schemes: Sequence[str],
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        **policy_kwargs: Any,
    ) -> Dict[str, Dict[str, Prediction]]:
        """The full app x scheme matrix as ``{app: {scheme: prediction}}``
        — app-major, so each stream is profiled exactly once."""
        return {
            app.upper(): {
                scheme: self.run_cell(
                    app, scheme, num_sms=num_sms, scale=scale, seed=seed,
                    **policy_kwargs,
                )
                for scheme in schemes
            }
            for app in apps
        }
