"""Calibration: pins the analytical model to the exact engines.

The raw model carries small systematic biases (stack-inclusion breaks
under write-evicts, window boundaries blur, protection side effects are
first-order).  A :class:`Calibration` owns

* a per-scheme **affine miss-rate correction** fit by least squares
  against exact fast-engine replays over the registry grid, and the
  **residuals** of that fit — the error bars attached to every
  calibrated :class:`~repro.predict.model.Prediction`;
* per-scheme **IPC cycle-model coefficients**: a linear model of
  simulated cycles over per-SM workload rates (instructions, reads,
  predicted misses/bypasses, writes), fit against the timing simulator.
  IPC = static instruction count / modelled cycles.

The shipped table (``calibration.json`` next to this module) was fit at
the harness operating point (``scale=0.25``, 2 SMs, seed 0) over all
registry apps; :func:`fit_calibration` rebuilds it for any other grid.
Everything round-trips through plain JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.predict.model import (
    IPC_FEATURES, PREDICTABLE_SCHEMES, Prediction, predict,
)
from repro.predict.profile import (
    PredictProfile, profile_records, workload_insns,
)

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.format import TraceRecord

#: The packaged default table.
DEFAULT_CALIBRATION_PATH = Path(__file__).with_name("calibration.json")

#: The paper's policy grid (what the envelope validates).
ENVELOPE_SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")


@dataclass
class SchemeCalibration:
    """Affine miss-rate correction + residual envelope for one scheme."""

    slope: float = 1.0
    intercept: float = 0.0
    mean_abs_err: float = 0.0
    max_abs_err: float = 0.0
    cells: int = 0

    def correct(self, miss_rate: float) -> float:
        return max(0.0, min(1.0, self.slope * miss_rate + self.intercept))

    def to_dict(self) -> Dict[str, float]:
        return {
            "slope": self.slope, "intercept": self.intercept,
            "mean_abs_err": self.mean_abs_err,
            "max_abs_err": self.max_abs_err, "cells": self.cells,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SchemeCalibration":
        return cls(
            slope=float(data["slope"]), intercept=float(data["intercept"]),
            mean_abs_err=float(data["mean_abs_err"]),
            max_abs_err=float(data["max_abs_err"]), cells=int(data["cells"]),
        )


@dataclass
class Calibration:
    """Per-scheme corrections + IPC coefficients, JSON round-trippable."""

    schemes: Dict[str, SchemeCalibration] = field(default_factory=dict)
    #: scheme -> {"intercept": c0, "<feature>": c, ...} cycle model.
    ipc_coeffs: Dict[str, Dict[str, float]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def for_scheme(self, scheme: str) -> Optional[SchemeCalibration]:
        return self.schemes.get(scheme)

    def apply(self, prediction: Prediction) -> Prediction:
        """Correct a raw prediction in place and attach its error bars."""
        cal = self.schemes.get(prediction.scheme)
        if cal is None:
            return prediction
        corrected = cal.correct(prediction.miss_rate)
        serviced = max(0.0, prediction.reads - prediction.bypasses)
        prediction.miss_rate = corrected
        prediction.hit_rate = 1.0 - corrected
        prediction.misses = corrected * serviced
        prediction.hits = serviced - prediction.misses
        prediction.error = {
            "mean_abs": cal.mean_abs_err, "max_abs": cal.max_abs_err,
        }
        if "ipc_mean_rel_err" in self.meta:
            prediction.error["ipc_mean_rel"] = float(
                self.meta["ipc_mean_rel_err"])
            prediction.error["ipc_max_rel"] = float(
                self.meta["ipc_max_rel_err"])
        prediction.calibrated = True
        return prediction

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schemes": {k: v.to_dict() for k, v in sorted(self.schemes.items())},
            "ipc_coeffs": {
                k: {f: float(c) for f, c in sorted(v.items())}
                for k, v in sorted(self.ipc_coeffs.items())
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Calibration":
        return cls(
            schemes={
                k: SchemeCalibration.from_dict(v)
                for k, v in data.get("schemes", {}).items()
            },
            ipc_coeffs={
                k: {f: float(c) for f, c in v.items()}
                for k, v in data.get("ipc_coeffs", {}).items()
            },
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: Path) -> None:
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")

    @classmethod
    def load(cls, path: Optional[Path] = None) -> "Calibration":
        return cls.from_dict(
            json.loads((path or DEFAULT_CALIBRATION_PATH).read_text()))


_default_calibration: Optional[Calibration] = None


def default_calibration() -> Optional[Calibration]:
    """The packaged table, cached; ``None`` if not shipped."""
    global _default_calibration
    if _default_calibration is None and DEFAULT_CALIBRATION_PATH.exists():
        _default_calibration = Calibration.load()
    return _default_calibration


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------


def _affine_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares y ~= slope*x + intercept (identity on degenerate x)."""
    n = len(xs)
    if n < 2:
        return 1.0, (ys[0] - xs[0]) if n else 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx < 1e-12:
        return 1.0, my - mx
    slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
    return slope, my - slope * mx


def _lstsq(rows: List[List[float]], ys: List[float]) -> Optional[List[float]]:
    """Ordinary least squares via normal equations + Gaussian elimination
    (ridge-damped for stability); ``None`` if the system is singular."""
    if not rows:
        return None
    k = len(rows[0])
    ata = [[sum(r[i] * r[j] for r in rows) for j in range(k)] for i in range(k)]
    aty = [sum(r[i] * y for r, y in zip(rows, ys)) for i in range(k)]
    for i in range(k):
        ata[i][i] += 1e-9 * (1.0 + abs(ata[i][i]))
    # Gaussian elimination with partial pivoting.
    for col in range(k):
        pivot = max(range(col, k), key=lambda r: abs(ata[r][col]))
        if abs(ata[pivot][col]) < 1e-12:
            return None
        ata[col], ata[pivot] = ata[pivot], ata[col]
        aty[col], aty[pivot] = aty[pivot], aty[col]
        inv = 1.0 / ata[col][col]
        for row in range(col + 1, k):
            factor = ata[row][col] * inv
            if factor == 0.0:
                continue
            for j in range(col, k):
                ata[row][j] -= factor * ata[col][j]
            aty[row] -= factor * aty[col]
    coeffs = [0.0] * k
    for row in range(k - 1, -1, -1):
        acc = aty[row] - sum(
            ata[row][j] * coeffs[j] for j in range(row + 1, k))
        coeffs[row] = acc / ata[row][row]
    return coeffs


def _exact_miss_rate(records: Sequence[TraceRecord], config: GPUConfig,
                     scheme: str, engine: str = "fast") -> float:
    from repro.trace.replay import replay_records

    result = replay_records(iter(records), config, scheme, engine=engine)
    return 1.0 - result.l1d.hit_rate


def fit_calibration(apps: Optional[Iterable[str]] = None,
                    config: Optional[GPUConfig] = None,
                    scale: float = 0.25, seed: int = 0,
                    schemes: Sequence[str] = ENVELOPE_SCHEMES,
                    fit_ipc: bool = True,
                    progress: Optional[Callable[[str], None]] = None,
                    ) -> Calibration:
    """Fit a fresh calibration against the exact engines.

    Runs one capture + profile per app, one fast-engine functional
    replay per (app, scheme) for the miss-rate fit, and — when
    ``fit_ipc`` — one *timing* simulation per (app, scheme) for the
    cycle model (the expensive part; minutes, not seconds).
    """
    from repro.experiments.runner import harness_config, run_workload
    from repro.trace.record import capture_records
    from repro.workloads import ALL_APPS, make_workload

    config = config or harness_config(2)
    apps = list(apps) if apps is not None else list(ALL_APPS)

    raw: Dict[str, List[Tuple[str, float, float, Prediction]]] = {
        s: [] for s in schemes
    }
    profiles: Dict[str, PredictProfile] = {}
    for app in apps:
        if progress:
            progress(f"profiling {app}")
        workload = make_workload(app, scale, seed=seed)
        records = capture_records(workload, config)
        profile = profile_records(records, config)
        profile.insns = workload_insns(workload)
        profile.meta.update({"source": "registry", "abbr": app.upper(),
                             "scale": scale, "seed": seed})
        profiles[app] = profile
        for scheme in schemes:
            exact = _exact_miss_rate(records, config, scheme)
            prediction = predict(profile, scheme, config)
            raw[scheme].append((app, prediction.miss_rate, exact, prediction))

    calibration = Calibration(meta={
        "apps": list(apps), "scale": scale, "seed": seed,
        "num_sms": config.num_sms, "schemes": list(schemes),
        "exact_tier": "fast-engine functional replay",
    })
    for scheme in schemes:
        cells = raw[scheme]
        xs = [r[1] for r in cells]
        ys = [r[2] for r in cells]
        slope, intercept = _affine_fit(xs, ys)
        scheme_cal = SchemeCalibration(slope=slope, intercept=intercept)
        residuals = [abs(scheme_cal.correct(x) - y) for x, y in zip(xs, ys)]
        scheme_cal.mean_abs_err = sum(residuals) / len(residuals)
        scheme_cal.max_abs_err = max(residuals)
        scheme_cal.cells = len(residuals)
        calibration.schemes[scheme] = scheme_cal

    if fit_ipc:
        _fit_ipc_coeffs(calibration, profiles, raw, config, scale, seed,
                        schemes, progress)
    return calibration


def _fit_ipc_coeffs(calibration: Calibration,
                    profiles: Dict[str, PredictProfile],
                    raw: Dict[str, List[Tuple[str, float, float, Prediction]]],
                    config: GPUConfig, scale: float, seed: int,
                    schemes: Sequence[str],
                    progress: Optional[Callable[[str], None]]) -> None:
    """Fit the per-scheme CPI model against timing simulations.

    CPI (cycles per per-SM thread instruction) is regressed on
    per-instruction memory rates, with each sample weighted by 1/CPI so
    the fit minimizes *relative* error — a latency-bound kernel and a
    dense compute kernel then count equally.
    """
    from repro.experiments.runner import run_workload

    ipc_errs: List[float] = []
    for scheme in schemes:
        rows: List[List[float]] = []
        ys: List[float] = []
        observed: List[Tuple[str, float, int]] = []
        for app, _raw_mr, _exact_mr, prediction in raw[scheme]:
            if progress:
                progress(f"timing {app}/{scheme}")
            profile = profiles[app]
            if not profile.insns:
                continue
            result = run_workload(app, scheme, config, scale=scale, seed=seed)
            sms = max(1, profile.num_sms or 1)
            # The CPI model sees the *calibrated* miss/bypass estimate
            # it will be fed at serve time.
            cal_pred = calibration.apply(Prediction(
                scheme=prediction.scheme, reads=prediction.reads,
                hits=prediction.hits, misses=prediction.misses,
                bypasses=prediction.bypasses,
                compulsory=prediction.compulsory,
                miss_rate=prediction.miss_rate,
                hit_rate=prediction.hit_rate))
            insns = float(profile.insns)
            rates = {
                "reads": profile.reads / insns,
                "misses": cal_pred.misses / insns,
                "bypasses": cal_pred.bypasses / insns,
                "writes": profile.writes / insns,
            }
            rows.append([1.0] + [rates[f] for f in IPC_FEATURES])
            ys.append(result.cycles / (insns / sms))
            observed.append((app, result.ipc, sms))
        weighted = [[v / y for v in row] for row, y in zip(rows, ys)]
        coeffs = _lstsq(weighted, [1.0] * len(ys))
        if coeffs is None:
            continue
        table = {"intercept": coeffs[0]}
        table.update({f: c for f, c in zip(IPC_FEATURES, coeffs[1:])})
        calibration.ipc_coeffs[scheme] = table
        for (app, exact_ipc, sms), row in zip(observed, rows):
            cpi = coeffs[0] + sum(
                c * v for c, v in zip(coeffs[1:], row[1:]))
            if cpi > 0 and exact_ipc > 0:
                ipc_errs.append(abs(sms / cpi - exact_ipc) / exact_ipc)
    if ipc_errs:
        calibration.meta["ipc_mean_rel_err"] = sum(ipc_errs) / len(ipc_errs)
        calibration.meta["ipc_max_rel_err"] = max(ipc_errs)


# ----------------------------------------------------------------------
# the committed error envelope
# ----------------------------------------------------------------------


def build_envelope(calibration: Optional[Calibration] = None,
                   apps: Optional[Iterable[str]] = None,
                   config: Optional[GPUConfig] = None,
                   scale: float = 0.25, seed: int = 0,
                   schemes: Sequence[str] = ENVELOPE_SCHEMES,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> Dict[str, object]:
    """Measure the calibrated predictor against the exact tier per cell.

    The result is the pinned ``tests/golden/predict_envelope.json``
    document: per-cell exact/predicted miss rates and per-scheme
    mean/max absolute error.
    """
    from repro.experiments.runner import harness_config
    from repro.trace.record import capture_records
    from repro.workloads import ALL_APPS, make_workload

    config = config or harness_config(2)
    apps = list(apps) if apps is not None else list(ALL_APPS)
    calibration = calibration or default_calibration()

    cells: List[Dict[str, object]] = []
    per_scheme: Dict[str, List[float]] = {s: [] for s in schemes}
    for app in apps:
        if progress:
            progress(f"validating {app}")
        workload = make_workload(app, scale, seed=seed)
        records = capture_records(workload, config)
        profile = profile_records(records, config)
        profile.insns = workload_insns(workload)
        for scheme in schemes:
            exact = _exact_miss_rate(records, config, scheme)
            prediction = predict(profile, scheme, config,
                                 calibration=calibration)
            err = abs(prediction.miss_rate - exact)
            per_scheme[scheme].append(err)
            cells.append({
                "app": app, "scheme": scheme,
                "exact_miss_rate": round(exact, 6),
                "predicted_miss_rate": round(prediction.miss_rate, 6),
                "abs_err": round(err, 6),
            })
    summary = {
        scheme: {
            "mean_abs_err": round(sum(errs) / len(errs), 6),
            "max_abs_err": round(max(errs), 6),
            "cells": len(errs),
        }
        for scheme, errs in per_scheme.items() if errs
    }
    all_errs = [e for errs in per_scheme.values() for e in errs]
    return {
        "meta": {
            "apps": list(apps), "scale": scale, "seed": seed,
            "num_sms": config.num_sms, "schemes": list(schemes),
            "exact_tier": "fast-engine functional replay",
            "calibrated": calibration is not None,
        },
        "summary": summary,
        "overall": {
            "mean_abs_err": round(sum(all_errs) / len(all_errs), 6),
            "max_abs_err": round(max(all_errs), 6),
            "cells": len(all_errs),
        },
        "cells": cells,
    }
