"""The analytical cache model: profile + scheme + geometry -> estimate.

No cache is stepped.  The estimators work from the per-epoch joint
(stack position, counter distance) reuse counts of a
:class:`~repro.predict.profile.PredictProfile`:

* **baseline / stall_bypass / 32kb / 64kb** — pure LRU: a live reuse
  hits iff its stack position is below the associativity (Mattson).
  Stall-Bypass only diverges from baseline under *timing* resource
  pressure, which the functional exact tier has none of, so the two
  share an estimator (their calibrations differ).
* **global_protection / dlp** — the Figure 9 learning loop is emulated
  over the same sampling windows the hardware uses: for each
  ~``sample_limit``-access window the model derives expected TDA hits
  (reuses the current PD saves) and VTA hits (reuses just beyond the
  cache + VTA window) from the window's epoch of the profile, then
  applies the repo's own update rules
  (:func:`repro.core.protection.pd_increment` /
  :func:`run_global_pd_update`) to evolve the PD estimate — per
  instruction for DLP, one scalar for Global-Protection.  Protection
  side effects are modelled first-order: protected occupancy crowds
  unprotected LRU residency down to an effective associativity,
  saturated sets bypass the fills that find no victim, and a bypassed
  fill's next reuse can neither hit nor leave a VTA tag.

The raw estimates carry systematic bias (stack-inclusion breaks under
write-evicts and protection, window boundaries blur); the calibration
layer (:mod:`repro.predict.calibrate`) owns the affine correction and
the error bars attached to a :class:`Prediction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.analysis.reuse import RD_LABELS, bucket_of
from repro.core.pdpt import PD_BITS
from repro.core.protection import pd_increment, run_global_pd_update
from repro.gpu.config import GPUConfig
from repro.predict.profile import (
    RD_CAP, SD_CAP, TAIL, EpochCounts, PredictProfile,
)

if TYPE_CHECKING:
    from repro.predict.calibrate import Calibration

#: Schemes the model understands (the paper's four policies plus the
#: capacity comparators, which are baseline LRU at 8/16 ways).
PREDICTABLE_SCHEMES = (
    "baseline", "stall_bypass", "global_protection", "dlp", "32kb", "64kb",
)

#: Sampling window the hardware recomputes PDs on (paper Section 4.2).
SAMPLE_WINDOW = 200
#: Cap on emulated windows; past this the trajectory is downsampled by
#: holding each emulated window's state for several real ones.
MAX_WINDOWS = 4096

#: Feature names of the calibrated CPI model (per-thread-instruction
#: rates; cycles = CPI x per-SM instructions, so IPC = SMs / CPI).
IPC_FEATURES = ("reads", "misses", "bypasses", "writes")


class PredictionError(ValueError):
    """The model cannot answer this request (unknown scheme, geometry
    mismatch, unsupported policy knobs)."""


@dataclass
class Prediction:
    """An analytical answer, shaped like the L1D slice of a SimResult."""

    scheme: str
    reads: int
    hits: float
    misses: float
    bypasses: float
    compulsory: int
    miss_rate: float
    hit_rate: float
    #: Fraction of predicted hits per paper RD bucket (Fig. 3 ranges).
    hit_buckets: List[float] = field(default_factory=lambda: [0.0] * 4)
    #: Final protection state of the emulation (0 for LRU schemes).
    pd_final: float = 0.0
    windows: int = 0
    #: Analytical IPC estimate (``None`` when the profile has no static
    #: instruction count — trace-only sources — or no cycle model).
    ipc: Optional[float] = None
    #: Absolute miss-rate error bar (calibration residuals); ``None``
    #: until a calibration is applied.
    error: Optional[Dict[str, float]] = None
    calibrated: bool = False

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "tier": "analytical",
            "scheme": self.scheme,
            "reads": self.reads,
            "hits": round(self.hits, 3),
            "misses": round(self.misses, 3),
            "bypasses": round(self.bypasses, 3),
            "compulsory": self.compulsory,
            "miss_rate": round(self.miss_rate, 6),
            "hit_rate": round(self.hit_rate, 6),
            "hit_buckets": {
                label: round(frac, 6)
                for label, frac in zip(RD_LABELS, self.hit_buckets)
            },
            "pd_final": round(self.pd_final, 3),
            "windows": self.windows,
            "calibrated": self.calibrated,
        }
        if self.ipc is not None:
            out["ipc"] = round(self.ipc, 4)
        if self.error is not None:
            out["error"] = {k: round(v, 6) for k, v in self.error.items()}
        return out


# ----------------------------------------------------------------------
# per-epoch reuse tables
# ----------------------------------------------------------------------


class _EpochTable:
    """One epoch's reuses, split for O(1) window queries.

    ``split(reach)`` partitions every (insn, sd, rd) count against an
    effective LRU reach into

    * ``lru[insn]`` — stack position below the reach (hits regardless
      of protection);
    * ``cum[insn][k]`` — reuses beyond reach with counter distance
      ``rd <= k`` (cumulative); ``cum[pd]`` is the protection-rescued
      mass at distance ``pd``;
    * ``band_cum[insn][k]`` / ``band_total[insn]`` — the subset of the
      beyond-reach reuses whose stack distance falls inside the VTA
      window ``[reach, reach + vta_assoc)``: the evicted tag is still
      VTA-resident (``sd - reach`` distinct blocks overflowed after it,
      fewer than the VTA ways).  ``band_total - band_cum[pd]`` is the
      *unrescued* VTA-hit mass at protection distance ``pd``;
    * ``tail[insn]`` — all reuses beyond reach (rescued or not).
    """

    def __init__(self, epoch: EpochCounts, vta_assoc: int,
                 pl_max: int) -> None:
        self.epoch = epoch
        self.vta_assoc = vta_assoc
        self.pl_max = pl_max
        self.reuse_per_insn: Dict[int, int] = {
            insn: sum(pairs.values()) for insn, pairs in epoch.joint.items()
        }
        self._splits: Dict[int, tuple] = {}

    def split(self, reach: int) -> tuple:
        cached = self._splits.get(reach)
        if cached is not None:
            return cached
        vta_edge = reach + self.vta_assoc
        lru: Dict[int, int] = {}
        cum: Dict[int, List[int]] = {}
        band_cum: Dict[int, List[int]] = {}
        band_total: Dict[int, int] = {}
        tail: Dict[int, int] = {}
        for insn, pairs in self.epoch.joint.items():
            lru_i = 0
            by_rd = [0] * (RD_CAP + 1)
            band_rd = [0] * (RD_CAP + 1)
            band_i = 0
            tail_i = 0
            for (sd, rd), n in pairs.items():
                if sd != TAIL and sd < reach:
                    lru_i += n
                    continue
                tail_i += n
                if rd != TAIL:
                    by_rd[rd] += n
                if sd != TAIL and sd < vta_edge:
                    band_i += n
                    if rd != TAIL:
                        band_rd[rd] += n
            running = band_running = 0
            for k in range(RD_CAP + 1):
                running += by_rd[k]
                by_rd[k] = running
                band_running += band_rd[k]
                band_rd[k] = band_running
            lru[insn] = lru_i
            cum[insn] = by_rd
            band_cum[insn] = band_rd
            band_total[insn] = band_i
            tail[insn] = tail_i
        result = (lru, cum, band_cum, band_total, tail)
        self._splits[reach] = result
        return result


# ----------------------------------------------------------------------
# scheme estimators
# ----------------------------------------------------------------------


def _resolve_geometry(scheme: str, config: GPUConfig) -> Tuple[int, GPUConfig]:
    if scheme in ("32kb", "64kb"):
        config = config.with_l1d_size_kb(int(scheme[:-2]))
    return config.l1d.assoc, config


def _check_profile(profile: PredictProfile, config: GPUConfig) -> None:
    l1 = config.l1d
    if (l1.num_sets, l1.line_size, l1.index_fn) != profile.geometry_key():
        raise PredictionError(
            f"profile was built for geometry {profile.geometry_key()}, "
            f"cannot answer ({l1.num_sets}, {l1.line_size}, {l1.index_fn!r}) "
            "— re-profile the stream for this set mapping"
        )


def _lru_prediction(profile: PredictProfile, scheme: str,
                    assoc: int) -> Prediction:
    hits = 0
    buckets = [0.0] * 4
    for epoch in profile.epochs:
        for pairs in epoch.joint.values():
            for (sd, rd), n in pairs.items():
                if sd != TAIL and sd < assoc:
                    hits += n
                    buckets[3 if rd == TAIL else bucket_of(rd)] += n
    reads = profile.reads
    misses = reads - hits
    total = sum(buckets)
    return Prediction(
        scheme=scheme, reads=reads, hits=float(hits),
        misses=float(misses), bypasses=0.0, compulsory=profile.compulsory,
        miss_rate=misses / reads if reads else 0.0,
        hit_rate=hits / reads if reads else 0.0,
        hit_buckets=[b / total for b in buckets] if total else [0.0] * 4,
    )


def _protected_prediction(profile: PredictProfile, scheme: str, assoc: int,
                          *, vta_assoc: Optional[int] = None,
                          pd_bits: int = PD_BITS,
                          nasc: Optional[int] = None,
                          sample_limit: int = SAMPLE_WINDOW,
                          bypass_enabled: bool = True) -> Prediction:
    """Window-by-window emulation of the Figure 9 learning loop."""
    pl_max = (1 << pd_bits) - 1
    vta = vta_assoc if vta_assoc is not None else assoc
    nasc_val = nasc if nasc is not None else vta
    per_insn = scheme == "dlp"

    accesses = profile.accesses
    sms = max(1, profile.num_sms or 1)
    # One emulated window == one sampling period of every SM at once
    # (samplers are per-SM; the merged stream advances them together).
    n_windows = max(1, round(accesses / (sample_limit * sms)))
    emulated = min(n_windows, MAX_WINDOWS)
    hold = n_windows / emulated  # real windows represented by one step

    # Re-bin the profile's epochs onto the window grid: with fewer
    # windows than epochs, sampling one midpoint epoch per window and
    # rate-scaling it up would amplify one unrepresentative slice, so
    # merge each window's whole span instead.
    src = list(profile.epochs) or [profile.merged()]
    if emulated < len(src):
        merged: List[EpochCounts] = []
        n_src = len(src)
        for w in range(emulated):
            lo = w * n_src // emulated
            hi = max(lo + 1, (w + 1) * n_src // emulated)
            group = EpochCounts()
            for e in src[lo:hi]:
                group.merge(e)
            merged.append(group)
        src = merged
    tables = [_EpochTable(e, vta, pl_max) for e in src]
    n_epochs = len(tables)
    epoch_accesses = [e.accesses for e in src]

    insns = sorted({
        i for e in profile.epochs for i in e.joint
    } | set(profile.write_evicted))
    pd: Dict[int, int] = {i: 0 for i in insns}
    global_pd = 0

    # Cross-window couplings, seeded neutral and EMA-damped: each feeds
    # back with one window of lag, and the bypass/occupancy loop rings
    # undamped.
    cached_frac = 1.0   # P(previous touch actually left the line cached)
    grant_rate = (profile.reads / accesses) if accesses else 0.0
    bypass_frac = 0.0
    damp = 0.5

    acc_hits = acc_misses = acc_bypasses = 0.0
    acc_pd = 0.0
    weight_total = 0.0
    final_reach = assoc

    window_accesses = accesses / n_windows if n_windows else 0.0

    for step in range(emulated):
        # Midpoint of the span of real windows this step stands for.
        frac = (step + 0.5) / emulated
        e_idx = min(n_epochs - 1, int(frac * n_epochs)) if n_epochs else 0
        table = tables[e_idx]
        epoch = table.epoch
        scale = (window_accesses / epoch_accesses[e_idx]
                 if epoch_accesses[e_idx] else 0.0)

        # Protected occupancy -> effective associativity (crowd-out) and
        # set-saturation bypass probability (Little's law: each granting
        # access protects one line for ~PD set queries).
        if per_insn:
            grants = sum(table.reuse_per_insn.values())
            mean_pd = (
                sum(pd[i] * n for i, n in table.reuse_per_insn.items())
                / grants if grants else 0.0
            )
        else:
            mean_pd = float(global_pd)
        occupancy = grant_rate * cached_frac * mean_pd
        assoc_eff = max(1, assoc - int(occupancy))
        p_bypass = min(1.0, max(0.0, occupancy - (assoc - 1))) \
            if bypass_enabled else 0.0
        # A bypassed fill displaces nothing, so every bypass shrinks the
        # stack distances of the reuses around it: stretch the LRU reach
        # by the surviving-fill fraction.
        reach = max(assoc_eff, min(
            SD_CAP, int(round(assoc_eff / max(0.05, 1.0 - bypass_frac)))))
        final_reach = reach

        lru, cum, band_cum, band_total, tail = table.split(reach)
        w_hits = w_vta = w_tail = 0.0
        insn_stats: List[Tuple[int, float, float]] = []
        for i in insns:
            pd_i = pd[i] if per_insn else global_pd
            lru_i = lru.get(i, 0)
            cum_i = cum.get(i)
            saved = cum_i[min(pd_i, RD_CAP)] if cum_i else 0
            band_i = band_cum.get(i)
            vta_raw = (band_total.get(i, 0) - band_i[min(pd_i, RD_CAP)]) \
                if band_i else 0
            vta_i = vta_raw * scale * cached_frac
            tda_i = (lru_i + saved) * scale * cached_frac
            miss_i = (tail.get(i, 0) - saved) * scale
            w_hits += tda_i
            w_vta += vta_i
            w_tail += miss_i + (lru_i + saved) * scale * (1.0 - cached_frac)
            insn_stats.append((i, vta_i, tda_i))
        w_write_evicted = epoch.write_evicted * scale
        w_compulsory = epoch.compulsory * scale
        w_misses = w_tail + w_write_evicted + w_compulsory
        w_bypassed = p_bypass * w_misses

        acc_hits += hold * w_hits
        acc_misses += hold * (w_misses - w_bypassed)
        acc_bypasses += hold * w_bypassed
        acc_pd += hold * (
            sum(pd.values()) / len(pd) if per_insn and pd else global_pd
        )
        weight_total += hold

        # Couplings feed the *next* window (EMA-damped).
        w_reads = epoch.reads * scale
        if w_reads > 0:
            sample = min(1.0, w_bypassed / w_reads)
            bypass_frac += damp * (sample - bypass_frac)
            cached_frac = max(0.0, min(1.0, 1.0 - bypass_frac))
        w_acc = epoch.accesses * scale
        if w_acc > 0:
            sample = (w_hits + (w_misses - w_bypassed)) / w_acc
            grant_rate += damp * (sample - grant_rate)

        # Figure 9 decision at sample end, via the repo's own rules.
        g_tda, g_vta = w_hits, w_vta
        if per_insn:
            if g_vta > g_tda:
                for i, vta_i, tda_i in insn_stats:
                    delta = pd_increment(nasc_val, vta_i, tda_i)
                    if delta:
                        pd[i] = min(pd[i] + delta, pl_max)
            elif 2 * g_vta < g_tda:
                for i in insns:
                    pd[i] = max(pd[i] - nasc_val, 0)
        else:
            global_pd, _ = run_global_pd_update(
                global_pd, pl_max, nasc_val, g_tda, g_vta)

    hits = acc_hits
    misses = acc_misses
    bypasses = acc_bypasses
    serviced = max(profile.reads - bypasses, 1e-9)
    buckets = [0.0] * 4
    for table in tables:
        for insn, pairs in table.epoch.joint.items():
            pd_i = pd[insn] if per_insn else global_pd
            for (sd, rd), n in pairs.items():
                hit = (sd != TAIL and sd < final_reach) or (
                    rd != TAIL and rd <= pd_i)
                if hit:
                    buckets[3 if rd == TAIL else bucket_of(rd)] += n
    total = sum(buckets)
    return Prediction(
        scheme=scheme, reads=profile.reads, hits=hits, misses=misses,
        bypasses=bypasses, compulsory=profile.compulsory,
        miss_rate=min(1.0, misses / serviced),
        hit_rate=max(0.0, min(1.0, hits / serviced)),
        hit_buckets=[b / total for b in buckets] if total else [0.0] * 4,
        pd_final=(acc_pd / weight_total if weight_total else 0.0),
        windows=n_windows,
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def predict(profile: PredictProfile, scheme: str,
            config: Optional[GPUConfig] = None,
            calibration: Optional[Calibration] = None,
            **policy_kwargs: Any) -> Prediction:
    """Analytically estimate one (stream, scheme, geometry) cell.

    ``calibration`` is a :class:`repro.predict.calibrate.Calibration`
    (or ``None`` for the raw model).  ``policy_kwargs`` accepts the
    protection knobs the replay path accepts (``vta_assoc``, ``pd_bits``,
    ``nasc``, ``sample_limit``, ``bypass_enabled``).
    """
    if scheme not in PREDICTABLE_SCHEMES:
        raise PredictionError(
            f"unknown scheme {scheme!r}; predictable: "
            f"{', '.join(PREDICTABLE_SCHEMES)}"
        )
    config = config or GPUConfig().scaled(profile.num_sms or 1)
    assoc, config = _resolve_geometry(scheme, config)
    _check_profile(profile, config)

    if scheme in ("global_protection", "dlp"):
        prediction = _protected_prediction(
            profile, scheme, assoc, **policy_kwargs)
    else:
        if policy_kwargs:
            raise PredictionError(
                f"scheme {scheme!r} accepts no policy knobs, "
                f"got {sorted(policy_kwargs)}"
            )
        prediction = _lru_prediction(profile, scheme, assoc)

    if calibration is not None:
        prediction = calibration.apply(prediction)
    if profile.insns is not None:
        prediction.ipc = _estimate_ipc(profile, prediction, config,
                                       calibration)
    return prediction


def _estimate_ipc(profile: PredictProfile, prediction: Prediction,
                  config: GPUConfig,
                  calibration: Optional[Calibration]) -> Optional[float]:
    """IPC from the calibrated CPI model (None without coefficients)."""
    tables = getattr(calibration, "ipc_coeffs", None) if calibration else None
    coeffs = tables.get(prediction.scheme) if tables else None
    if not coeffs or not profile.insns:
        return None
    sms = max(1, profile.num_sms or config.num_sms)
    insns = float(profile.insns)
    rates = {
        "reads": profile.reads / insns,
        "misses": prediction.misses / insns,
        "bypasses": prediction.bypasses / insns,
        "writes": profile.writes / insns,
    }
    cpi = coeffs.get("intercept", 0.0)
    for name in IPC_FEATURES:
        cpi += coeffs.get(name, 0.0) * rates[name]
    if cpi <= 0:
        return None
    # cycles = cpi * (insns / sms)  =>  ipc = insns / cycles = sms / cpi
    return sms / cpi
