"""repro.predict: the analytical prediction tier.

Given a captured ``.rptr`` trace or a registered workload, build a
temporal reuse profile (:mod:`repro.predict.profile`), estimate miss
rate / hit distribution / IPC for any scheme and L1D geometry without
stepping a cache (:mod:`repro.predict.model`), and pin the estimates to
the exact engines with a fitted calibration carrying explicit error
bars (:mod:`repro.predict.calibrate`).  The
:class:`~repro.predict.executor.PredictSweepExecutor` answers whole
experiment grids this way, and ``repro.serve`` uses the same path as
its tier-0: cold requests get an instant analytical answer while the
exact simulation runs behind it.
"""

from repro.predict.calibrate import (
    ENVELOPE_SCHEMES,
    Calibration,
    SchemeCalibration,
    build_envelope,
    default_calibration,
    fit_calibration,
)
from repro.predict.executor import PredictSweepExecutor, PredictSweepStats
from repro.predict.model import (
    PREDICTABLE_SCHEMES,
    Prediction,
    PredictionError,
    predict,
)
from repro.predict.profile import (
    NUM_EPOCHS,
    PredictProfile,
    PredictProfiler,
    profile_records,
    profile_trace,
    profile_workload,
    workload_insns,
)

__all__ = [
    "ENVELOPE_SCHEMES",
    "Calibration",
    "SchemeCalibration",
    "build_envelope",
    "default_calibration",
    "fit_calibration",
    "PredictSweepExecutor",
    "PredictSweepStats",
    "PREDICTABLE_SCHEMES",
    "Prediction",
    "PredictionError",
    "predict",
    "NUM_EPOCHS",
    "PredictProfile",
    "PredictProfiler",
    "profile_records",
    "profile_trace",
    "profile_workload",
    "workload_insns",
]
