"""Reuse profiles for analytical prediction (the predictor's input).

The predictor needs more than the paper's four-bucket RDD: for every
read reuse it records the pair

* ``sd`` — the LRU *stack position* of the line at re-reference time
  (the number of distinct lines touched in the set since the previous
  touch).  Under pure LRU the reuse hits iff ``sd < assoc``, for *any*
  associativity — one profiling pass answers every cache size (Mattson's
  classic stack algorithm).
* ``rd`` — the paper's access-counter reuse distance *including writes*
  (a store runs the set query too), which is exactly the clock that
  decays a line's Protected Life.  A line granted ``PL = p`` at its last
  touch is guaranteed resident iff ``rd <= p``, regardless of its stack
  position — which is how protection rescues reuses LRU would lose.

Counts are kept per **epoch** (a fixed slice of the merged access
stream, at most :data:`NUM_EPOCHS` per profile) because the protection
schemes *learn*: whether a sampling window raises the Protection
Distance depends on the VTA traffic of that window, and reuse behaviour
is strongly phased in real streams.  A temporally flat profile makes
the Figure 9 emulation learn from reuses that are long gone.

Reuses are attributed to the hashed instruction ID of the *previous*
toucher (:func:`repro.utils.hashing.hash_pc`) — the same convention the
DLP hardware uses for its TDA/VTA hit counters, PDPT collisions
included.  Stores are modelled as the cache models them (write-through,
write-evict): a written block's next read can never hit, and the write
removes the block from the stack.

A :class:`PredictProfile` is a plain JSON document, so profiles cache
per trace key and travel through the serve worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.reuse import RddHistogram
from repro.cache.tagarray import CacheGeometry
from repro.gpu.config import GPUConfig
from repro.gpu.isa import ComputeOp
from repro.utils.hashing import hash_pc

if TYPE_CHECKING:
    from repro.trace.format import TraceReader
    from repro.workloads import Workload

#: Per-SM profiler state: (stacks[set] = blocks MRU->LRU, counters[set],
#: read_counters[set], last[set][block] = (insn, ctr, read_ctr, written)).
SmState = Tuple[
    List[List[int]],
    List[int],
    List[int],
    List[Dict[int, Tuple[int, int, int, bool]]],
]

#: Stack positions are exact up to this depth; anything deeper lands in
#: the tail.  Deep enough for the largest modelled geometry (64 KB =
#: 16 ways) plus a full VTA window behind it.
SD_CAP = 48
#: Counter distances are exact up to this value; protection can rescue a
#: reuse only while ``rd <= pl_max`` (15 at the paper's 4 PD bits, 31 at
#: the widest ablation), so the tail is never protectable.
RD_CAP = 32
#: Sentinel for "beyond the cap" (kept JSON-round-trippable).
TAIL = -1
#: Temporal resolution of a profile (upper bound on epochs kept).
NUM_EPOCHS = 64


def _cap(value: int, cap: int) -> int:
    return value if value <= cap else TAIL


@dataclass
class EpochCounts:
    """One stream slice: reuse pairs plus the window-rate denominators."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    compulsory: int = 0
    #: write-evicted reuses (a store invalidated the line in between —
    #: misses at any associativity).
    write_evicted: int = 0
    #: ``joint[insn][(sd, rd)]`` -> count of live read reuses.
    joint: Dict[int, Dict[Tuple[int, int], int]] = field(default_factory=dict)

    def add_reuse(self, insn: int, sd: int, rd: int) -> None:
        pairs = self.joint.setdefault(insn, {})
        key = (sd, rd)
        pairs[key] = pairs.get(key, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "accesses": self.accesses,
            "reads": self.reads,
            "writes": self.writes,
            "compulsory": self.compulsory,
            "write_evicted": self.write_evicted,
            "joint": {
                str(insn): [[sd, rd, n] for (sd, rd), n in sorted(pairs.items())]
                for insn, pairs in sorted(self.joint.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EpochCounts":
        epoch = cls(
            accesses=int(data["accesses"]), reads=int(data["reads"]),
            writes=int(data["writes"]), compulsory=int(data["compulsory"]),
            write_evicted=int(data["write_evicted"]),
        )
        for insn, triples in data["joint"].items():
            pairs = epoch.joint.setdefault(int(insn), {})
            for sd, rd, n in triples:
                pairs[(int(sd), int(rd))] = int(n)
        return epoch

    def merge(self, other: "EpochCounts") -> None:
        self.accesses += other.accesses
        self.reads += other.reads
        self.writes += other.writes
        self.compulsory += other.compulsory
        self.write_evicted += other.write_evicted
        for insn, pairs in other.joint.items():
            mine = self.joint.setdefault(insn, {})
            for key, n in pairs.items():
                mine[key] = mine.get(key, 0) + n


@dataclass
class PredictProfile:
    """Everything the analytical model needs, and nothing else."""

    num_sets: int = 32
    line_size: int = 128
    index_fn: str = "hash"
    num_sms: int = 0
    epochs: List[EpochCounts] = field(default_factory=list)
    #: The paper's Fig. 3 RDD over read-only counter distances (the
    #: reporting convention of :mod:`repro.analysis.reuse`).
    rdd: RddHistogram = field(default_factory=RddHistogram)
    #: Fig. 7-style per-instruction RDDs (same read-only distances,
    #: keyed by the hashed previous-toucher instruction ID).
    insn_rdd: Dict[int, RddHistogram] = field(default_factory=dict)
    #: Per-instruction write-evicted reuse counts (whole stream).
    write_evicted: Dict[int, int] = field(default_factory=dict)
    #: Static thread-instruction count (workload sources only; traces
    #: carry no instruction stream, so this stays ``None`` for them).
    insns: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    # -- totals --------------------------------------------------------

    @property
    def accesses(self) -> int:
        return sum(e.accesses for e in self.epochs)

    @property
    def reads(self) -> int:
        return sum(e.reads for e in self.epochs)

    @property
    def writes(self) -> int:
        return sum(e.writes for e in self.epochs)

    @property
    def compulsory(self) -> int:
        return sum(e.compulsory for e in self.epochs)

    @property
    def reuses(self) -> int:
        return sum(
            sum(pairs.values())
            for e in self.epochs for pairs in e.joint.values()
        ) + sum(e.write_evicted for e in self.epochs)

    def merged(self) -> EpochCounts:
        """All epochs collapsed into one (temporally flat view)."""
        total = EpochCounts()
        for epoch in self.epochs:
            total.merge(epoch)
        return total

    def geometry_key(self) -> Tuple[int, int, str]:
        return (self.num_sets, self.line_size, self.index_fn)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_sets": self.num_sets,
            "line_size": self.line_size,
            "index_fn": self.index_fn,
            "num_sms": self.num_sms,
            "epochs": [e.to_dict() for e in self.epochs],
            "rdd": list(self.rdd.counts),
            "insn_rdd": {
                str(insn): list(hist.counts)
                for insn, hist in sorted(self.insn_rdd.items())
            },
            "write_evicted": {
                str(insn): n for insn, n in sorted(self.write_evicted.items())
            },
            "insns": self.insns,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PredictProfile":
        profile = cls(
            num_sets=int(data["num_sets"]),
            line_size=int(data["line_size"]),
            index_fn=str(data["index_fn"]),
            num_sms=int(data["num_sms"]),
            epochs=[EpochCounts.from_dict(e) for e in data["epochs"]],
            insns=None if data.get("insns") is None else int(data["insns"]),
            meta=dict(data.get("meta", {})),
        )
        profile.rdd = RddHistogram([int(c) for c in data["rdd"]])
        for insn, counts in data.get("insn_rdd", {}).items():
            profile.insn_rdd[int(insn)] = \
                RddHistogram([int(c) for c in counts])
        for insn, n in data["write_evicted"].items():
            profile.write_evicted[int(insn)] = int(n)
        return profile


class PredictProfiler:
    """One pass over an access stream, per-SM state, merged output.

    ``expected_per_sm`` maps SM id to that stream's record count and
    sizes the epochs: a record's epoch is its *fractional position in
    its own SM's stream*, so SM streams line up phase-by-phase whether
    the source interleaves them (live capture) or concatenates them
    (``TraceReader``).  Without the hint the whole stream lands in one
    epoch (temporally flat — fine for short synthetic streams, lossy
    for phased applications).
    """

    def __init__(self, config: GPUConfig,
                 expected_per_sm: Optional[Dict[int, int]] = None) -> None:
        l1 = config.l1d
        self.geometry = CacheGeometry(
            num_sets=l1.num_sets, assoc=l1.assoc,
            line_size=l1.line_size, index_fn=l1.index_fn,
        )
        self.profile = PredictProfile(
            num_sets=l1.num_sets, line_size=l1.line_size,
            index_fn=l1.index_fn, num_sms=config.num_sms,
        )
        self._expected_per_sm = expected_per_sm
        self._insn_ids: Dict[int, int] = {}
        # per SM: stacks[set] = blocks MRU->LRU; counters[set] = set
        # queries so far; read_ctr[set] = reads only (reporting RDD);
        # last[set][block] = (insn, counter, read_counter, written);
        # seen = records consumed from this SM's stream (epoch clock)
        self._sms: Dict[int, SmState] = {}
        self._seen: Dict[int, int] = {}

    # -- internals -----------------------------------------------------

    def _epoch(self, sm_id: int) -> EpochCounts:
        if not self._expected_per_sm:
            index = 0
        else:
            expected = self._expected_per_sm.get(sm_id, 0)
            if expected <= 0:
                index = 0
            else:
                index = min(NUM_EPOCHS - 1,
                            self._seen[sm_id] * NUM_EPOCHS // expected)
        epochs = self.profile.epochs
        while len(epochs) <= index:
            epochs.append(EpochCounts())
        return epochs[index]

    def _sm_state(self, sm_id: int) -> SmState:
        state = self._sms.get(sm_id)
        if state is None:
            nsets = self.geometry.num_sets
            state = self._sms[sm_id] = (
                [[] for _ in range(nsets)],        # stacks
                [0] * nsets,                        # set-query counters
                [0] * nsets,                        # read-only counters
                [dict() for _ in range(nsets)],     # last-touch info
            )
            self._seen[sm_id] = 0
        return state

    def _insn(self, pc: int) -> int:
        cached = self._insn_ids.get(pc)
        if cached is None:
            cached = self._insn_ids[pc] = hash_pc(pc)
        return cached

    # -- observation ---------------------------------------------------

    def observe(self, sm_id: int, block_addr: int, pc: int,
                is_write: bool) -> None:
        profile = self.profile
        stacks, counters, read_ctrs, lasts = self._sm_state(sm_id)
        epoch = self._epoch(sm_id)
        self._seen[sm_id] += 1
        set_idx = self.geometry.set_index(block_addr)
        stack = stacks[set_idx]
        last = lasts[set_idx]
        counters[set_idx] += 1
        epoch.accesses += 1

        if is_write:
            epoch.writes += 1
            prev = last.get(block_addr)
            if prev is not None:
                last[block_addr] = (prev[0], prev[1], prev[2], True)
            try:
                stack.remove(block_addr)
            except ValueError:
                pass
            return

        epoch.reads += 1
        read_ctrs[set_idx] += 1
        counter = counters[set_idx]
        read_counter = read_ctrs[set_idx]
        insn = self._insn(pc)
        prev = last.get(block_addr)
        last[block_addr] = (insn, counter, read_counter, False)

        if prev is None:
            epoch.compulsory += 1
            stack.insert(0, block_addr)
            return

        prev_insn, prev_counter, prev_read_counter, written = prev
        read_rd = read_counter - prev_read_counter
        profile.rdd.add(read_rd)
        insn_hist = profile.insn_rdd.get(prev_insn)
        if insn_hist is None:
            insn_hist = profile.insn_rdd[prev_insn] = RddHistogram()
        insn_hist.add(read_rd)
        if written:
            epoch.write_evicted += 1
            profile.write_evicted[prev_insn] = (
                profile.write_evicted.get(prev_insn, 0) + 1
            )
            stack.insert(0, block_addr)
            return

        rd = counter - prev_counter
        try:
            pos = stack.index(block_addr)
            del stack[pos]
        except ValueError:  # pragma: no cover - unwritten blocks stay
            pos = SD_CAP + 1
        stack.insert(0, block_addr)
        epoch.add_reuse(prev_insn, _cap(pos, SD_CAP), _cap(rd, RD_CAP))


def profile_records(records: Sequence, config: GPUConfig) -> PredictProfile:
    """Profile an in-memory record stream (``TraceRecord`` tuples)."""
    expected: Optional[Dict[int, int]] = None
    if hasattr(records, "__len__"):
        expected = {}
        for record in records:
            expected[record[0]] = expected.get(record[0], 0) + 1
    profiler = PredictProfiler(config, expected_per_sm=expected)
    for record in records:
        profiler.observe(record[0], record[1], record[2], bool(record[3]))
    return profiler.profile


def profile_trace(reader: TraceReader,
                  config: Optional[GPUConfig] = None) -> PredictProfile:
    """Profile a recorded ``.rptr`` trace.

    The trace header fixes the stream's own geometry (SM count, line
    size); ``config`` only overrides the *modelled* L1D geometry and
    must agree on the line size.
    """
    from repro.trace.format import TraceFormatError

    if config is None:
        config = GPUConfig().scaled(reader.num_sms)
    if reader.line_size != config.l1d.line_size:
        raise TraceFormatError(
            f"trace line size {reader.line_size} != config line size "
            f"{config.l1d.line_size}"
        )
    expected = {sm: count
                for sm, count in enumerate(reader.records_per_sm)}
    profiler = PredictProfiler(config, expected_per_sm=expected)
    for record in reader:
        profiler.observe(record[0], record[1], record[2], bool(record[3]))
    profile = profiler.profile
    profile.num_sms = reader.num_sms
    profile.meta.update(reader.meta)
    return profile


def profile_workload(abbr: str, config: GPUConfig, scale: float = 1.0,
                     seed: int = 0) -> PredictProfile:
    """Capture + profile a registered workload (no trace file needed)."""
    from repro.trace.record import capture_records
    from repro.workloads import make_workload

    workload = make_workload(abbr, scale, seed=seed)
    records = capture_records(workload, config)
    profile = profile_records(records, config)
    profile.insns = workload_insns(workload)
    profile.meta.update({
        "source": "registry", "abbr": abbr.upper(),
        "scale": scale, "seed": seed,
    })
    return profile


def workload_insns(workload: Workload) -> int:
    """Static thread-instruction count of a workload — the numerator of
    IPC — summed over every warp trace without stepping the simulator."""
    total = 0
    for kernel in workload.kernels():
        for warp_ops in kernel.all_traces():
            for op in warp_ops:
                if isinstance(op, ComputeOp):
                    total += op.count * 32
                else:
                    total += op.active_lanes
    return total
