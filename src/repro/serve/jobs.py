"""Job bookkeeping and the worker-process entry points.

A :class:`Job` is the service-side record of one client submission:
its request, lifecycle state, per-unit results and (on failure) the
machine-readable error payload.  Jobs never cross the process boundary
— only the two module-level worker functions below do, and both return
plain serialized dicts (the store's exact on-disk representation), so
a payload that crossed the pool and one read back from disk are
bit-identical.

Worker entry points:

* timing units reuse :func:`repro.experiments.executor.simulate_cell`
  directly (same function the sweep executor ships to its pool);
* replay units run :func:`replay_unit`, which captures the workload's
  access stream (record-once through an optional shared trace
  directory, atomically published) and drives the replay engine;
* tier-0 analytical answers come from :func:`predict_unit`, which keeps
  one profile-caching :class:`~repro.predict.executor.
  PredictSweepExecutor` alive per worker process, so repeat predictions
  for the same stream skip straight to the closed-form model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.gpu.config import GPUConfig
from repro.serve.protocol import PRIORITY_NAMES, JobRequest
from repro.utils import wallclock

# job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted job and everything the status endpoint reports."""

    id: str
    request: JobRequest
    state: str = QUEUED
    submitted_at: float = field(default_factory=wallclock.now)
    finished_at: Optional[float] = None
    results: Optional[List[Dict[str, Any]]] = None
    error: Optional[Dict[str, Any]] = None
    task: Any = None                # the asyncio.Task driving the job

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict[str, Any]:
        """Compact listing entry (``GET /jobs``)."""
        priority_name = next(
            (name for name, value in PRIORITY_NAMES.items()
             if value == self.request.priority),
            str(self.request.priority),
        )
        doc = {
            "id": self.id,
            "kind": self.request.kind,
            "priority": priority_name,
            "state": self.state,
            "units": len(self.request.units),
        }
        if self.request.client != "anonymous":
            doc["client"] = self.request.client
        return doc

    def status(self, include_results: bool = True) -> Dict[str, Any]:
        """Full status document (``GET /jobs/<id>``)."""
        doc = self.summary()
        doc["unit_specs"] = [u.describe() for u in self.request.units]
        doc["submitted_at"] = round(self.submitted_at, 3)
        if self.finished_at is not None:
            doc["finished_at"] = round(self.finished_at, 3)
        if self.error is not None:
            doc["error"] = self.error
        if include_results and self.results is not None:
            doc["results"] = self.results
        return doc


# ----------------------------------------------------------------------
# worker-process entry points (module-level: must be picklable)
# ----------------------------------------------------------------------

def replay_unit(spec: Dict[str, Any],
                trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Replay one ``(app, scheme)`` cell; returns the serialized result.

    With a ``trace_dir``, the workload's stream is recorded at most
    once per stream key and shared with every other scheme (and with
    the ``repro trace``/``repro sweep --replay`` verbs).  The recording
    is staged in a tmp file and ``os.replace``d into place, so two
    workers racing to capture the same stream at worst record it twice
    — a reader never observes a torn trace.
    """
    from repro.experiments.store import trace_key
    from repro.trace.format import TraceReader
    from repro.trace.record import capture_records, record_workload
    from repro.trace.replay import replay_records, replay_trace
    from repro.workloads import make_workload

    abbr = spec["abbr"]
    scheme = spec["scheme"]
    scale = spec["scale"]
    seed = spec["seed"]
    kwargs = dict(spec["policy_kwargs"])
    engine = spec.get("engine", "reference")
    config = GPUConfig().scaled(spec["num_sms"])
    # Traces are mode-independent (the coalesced access stream), so the
    # recording side always uses the blocking config and its trace key;
    # non_blocking only changes how the *replay* services the stream.
    replay_config = (
        config.with_l1d(non_blocking=True)
        if spec.get("non_blocking") else config
    )

    if trace_dir:
        root = Path(trace_dir)
        root.mkdir(parents=True, exist_ok=True)
        key = trace_key(abbr, config, scale=scale, seed=seed)
        path = root / f"{key}.rptr"
        if not path.exists():
            tmp = root / f"{key}.tmp.{os.getpid()}"
            try:
                record_workload(make_workload(abbr, scale, seed=seed),
                                config, tmp)
                os.replace(tmp, path)
            except BaseException:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
        result = replay_trace(TraceReader(path), scheme, replay_config,
                              engine=engine, **kwargs)
    else:
        records = capture_records(make_workload(abbr, scale, seed=seed),
                                  config)
        result = replay_records(iter(records), replay_config, scheme,
                                engine=engine, **kwargs)
    return result.to_dict()


#: Per-process predictor cache, keyed by trace directory: worker
#: processes are long-lived, so every prediction after the first for a
#: given stream reuses its profile instead of re-capturing.
_PREDICTORS: Dict[Optional[str], Any] = {}


def predict_unit(spec: Dict[str, Any],
                 trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Answer one ``(app, scheme)`` cell analytically (tier-0).

    Returns :meth:`repro.predict.model.Prediction.to_dict` — flagged
    ``tier: "analytical"`` and carrying the calibration's error bars —
    never the store's exact-result shape.  With a ``trace_dir``, a
    stream already recorded for the replay tier is profiled from its
    trace instead of re-captured.
    """
    from repro.predict import PredictSweepExecutor

    executor = _PREDICTORS.get(trace_dir)
    if executor is None:
        executor = _PREDICTORS[trace_dir] = \
            PredictSweepExecutor(trace_dir=trace_dir)
    prediction = executor.run_cell(
        spec["abbr"],
        spec["scheme"],
        num_sms=spec["num_sms"],
        scale=spec["scale"],
        seed=spec["seed"],
        **dict(spec["policy_kwargs"]),
    )
    return prediction.to_dict()
