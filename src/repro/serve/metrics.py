"""Service observability: counters and latency histograms.

Everything the ``/metrics`` endpoint reports lives here, updated by the
scheduler as it admits, coalesces, resolves and executes units:

* job lifecycle counters (submitted / done / failed / cancelled),
* cell accounting (requested, coalesced onto an in-flight execution,
  served warm from the store, simulated cold, failed),
* tier-0 accounting (analytical answers returned, background exact
  refinements queued, and the superseded-answer latency histogram:
  analytical answer -> exact result stored),
* a queue-wait histogram (enqueue -> worker pickup), and
* per-policy simulation-latency histograms.

Snapshots are plain JSON; :func:`render_prometheus` renders the same
snapshot in the Prometheus text exposition format for scrapers.  All
timing flows through :mod:`repro.utils.wallclock` — service telemetry
is the one sanctioned consumer of wall-clock time in this package, and
nothing recorded here feeds back into simulation semantics.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Log-spaced latency buckets (seconds).  The interesting range spans a
#: tier-0 analytical answer (~18 µs) through a warm store hit to a
#: multi-minute bulk simulation; the sub-millisecond decades exist so
#: tier-0 and store-hit latencies resolve instead of piling into the
#: first bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-05, 2.5e-05, 5e-05, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram with a Prometheus-compatible shape."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        # First bound >= seconds, i.e. the first bucket whose
        # ``seconds <= bound`` test passes; len(bounds) lands in +Inf.
        self.counts[bisect_left(self.bounds, seconds)] += 1

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative bucket counts keyed by upper bound (like ``le``)."""
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + self.counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "buckets": cumulative,
        }


@dataclass
class ServeMetrics:
    """All counters behind ``/metrics``; owned by one scheduler."""

    jobs_submitted: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    jobs_rejected: int = 0          # submissions refused while draining
    # cluster admission control (HTTP 429 + Retry-After)
    jobs_throttled_queue: int = 0   # refused: admission queue full
    jobs_throttled_rate: int = 0    # refused: client over its token bucket

    cells_requested: int = 0        # every unit a job asked for
    cells_coalesced: int = 0        # attached to an in-flight execution
    cells_store_hits: int = 0       # served warm from the result store
    cells_simulated: int = 0        # executed cold on a worker
    cells_failed: int = 0
    cells_requeued: int = 0         # re-admitted after a worker crash

    # worker-pool supervision (ClusterScheduler)
    worker_restarts: int = 0        # pool replaced after a crash

    # tier-0 analytical serving (``predict: true`` jobs)
    predict_answers: int = 0        # analytical answers returned
    refinements: int = 0            # background exact refinements queued

    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    sim_latency: Dict[str, LatencyHistogram] = field(default_factory=dict)
    #: Analytical answer returned -> exact result stored for that cell
    #: (how long a superseded answer stays the best one available).
    supersede_latency: LatencyHistogram = field(
        default_factory=LatencyHistogram)

    def sim_latency_for(self, scheme: str) -> LatencyHistogram:
        hist = self.sim_latency.get(scheme)
        if hist is None:
            hist = self.sim_latency[scheme] = LatencyHistogram()
        return hist

    # ------------------------------------------------------------------

    def snapshot(
        self,
        *,
        queued: int = 0,
        running: int = 0,
        jobs_active: int = 0,
        store_stats: Optional[Dict[str, int]] = None,
        draining: bool = False,
        uptime: Optional[float] = None,
        workers: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One coherent JSON document for the ``/metrics`` endpoint."""
        workers_doc: Dict[str, Any] = {"restarts_total": self.worker_restarts}
        workers_doc.update(workers or {})
        doc: Dict[str, Any] = {
            "jobs": {
                "submitted": self.jobs_submitted,
                "active": jobs_active,
                "done": self.jobs_done,
                "failed": self.jobs_failed,
                "cancelled": self.jobs_cancelled,
                "rejected": self.jobs_rejected,
                "throttled_queue": self.jobs_throttled_queue,
                "throttled_rate": self.jobs_throttled_rate,
            },
            "cells": {
                "requested": self.cells_requested,
                "coalesced": self.cells_coalesced,
                "store_hits": self.cells_store_hits,
                "simulated": self.cells_simulated,
                "failed": self.cells_failed,
                "requeued": self.cells_requeued,
                "queued": queued,
                "running": running,
            },
            "predict": {
                "answers_total": self.predict_answers,
                "refinements_total": self.refinements,
            },
            "workers": workers_doc,
            "store": dict(store_stats or {}),
            "queue_wait_seconds": self.queue_wait.snapshot(),
            "supersede_latency_seconds": self.supersede_latency.snapshot(),
            "sim_latency_seconds": {
                scheme: hist.snapshot()
                for scheme, hist in sorted(self.sim_latency.items())
            },
            "draining": draining,
        }
        if uptime is not None:
            doc["uptime_seconds"] = round(uptime, 3)
        return doc


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`ServeMetrics.snapshot` document as Prometheus
    text exposition (``/metrics?format=prom``)."""
    lines: List[str] = []

    def counter(name: str, value: Any, labels: str = "") -> None:
        lines.append(f"repro_serve_{name}{labels} {value}")

    for group in ("jobs", "cells", "predict", "workers", "store"):
        for key, value in snapshot.get(group, {}).items():
            counter(f"{group}_{key}", value)
    counter("draining", int(bool(snapshot.get("draining"))))
    if "uptime_seconds" in snapshot:
        counter("uptime_seconds", snapshot["uptime_seconds"])

    def histogram(name: str, hist: Dict[str, Any], labels: str = "") -> None:
        for bound, value in hist["buckets"].items():
            sep = "," if labels else ""
            label = labels[:-1] + sep if labels else "{"
            lines.append(
                f'repro_serve_{name}_bucket{label}le="{bound}"}} {value}'
            )
        counter(f"{name}_sum", hist["sum"], labels)
        counter(f"{name}_count", hist["count"], labels)

    histogram("queue_wait_seconds", snapshot["queue_wait_seconds"])
    if "supersede_latency_seconds" in snapshot:
        histogram("supersede_latency_seconds",
                  snapshot["supersede_latency_seconds"])
    for scheme, hist in snapshot.get("sim_latency_seconds", {}).items():
        histogram("sim_latency_seconds", hist, labels=f'{{scheme="{scheme}"}}')
    return "\n".join(lines) + "\n"
