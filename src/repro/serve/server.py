"""Stdlib-only asyncio HTTP front end for the simulation service.

A deliberately small HTTP/1.1 implementation over ``asyncio.streams``
(no framework, no threads): one short-lived connection per request,
JSON in, JSON out, ``Connection: close``.  Routes:

=======  ======================  =========================================
method   path                    behaviour
=======  ======================  =========================================
GET      /healthz                liveness + drain state (always answers)
GET      /metrics                counters/histograms as JSON;
                                 ``?format=prom`` for Prometheus text
POST     /jobs                   submit a job (see repro.serve.protocol)
GET      /jobs                   list job summaries
GET      /jobs/<id>              full status incl. results when done
POST     /jobs/<id>/cancel       cancel (also DELETE /jobs/<id>)
=======  ======================  =========================================

``serve_async`` is the long-running entry point behind ``repro serve``:
it wires a :class:`~repro.serve.scheduler.Scheduler` to the listener,
installs SIGTERM/SIGINT handlers, and on the first signal stops
admitting jobs (503), drains active work, then exits cleanly.
:class:`ServerThread` runs the same stack on a background thread with
an ephemeral port — the harness tests and benchmarks drive a real
server in-process through it.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Union

from repro.serve.cluster import ClusterScheduler, RetryableError
from repro.serve.metrics import render_prometheus
from repro.serve.protocol import ProtocolError, parse_job_request
from repro.serve.scheduler import DrainingError, Scheduler

if TYPE_CHECKING:
    from repro.serve.client import ServeClient

#: Largest accepted request body; a sweep grid is a few hundred bytes,
#: so anything near this is a client bug, not a bigger experiment.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: What every handler returns: status, body, content type, and any
#: extra response headers (e.g. ``Retry-After`` on a 429).
Response = Tuple[int, str, str, Dict[str, str]]


class ServeApp:
    """Route table + request handler bound to one scheduler."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    # -- connection handling -------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        extra_headers: Dict[str, str] = {}
        try:
            status, body, content_type, extra_headers = \
                await self._respond(reader)
        except Exception as exc:  # a handler bug must not kill the server
            status = 500
            body = json.dumps({"error": f"{type(exc).__name__}: {exc}"})
            content_type = "application/json"
        try:
            payload = body.encode("utf-8")
            extra = "".join(
                f"{name}: {value}\r\n"
                for name, value in extra_headers.items()
            )
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n".encode("ascii") + payload
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Response:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, json.dumps({"error": "malformed request line"}), \
                "application/json", {}
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, json.dumps(
                        {"error": "bad Content-Length"}), \
                        "application/json", {}
        if content_length > MAX_BODY_BYTES:
            return 413, json.dumps(
                {"error": "request body too large"}), "application/json", {}
        body = await reader.readexactly(content_length) \
            if content_length else b""
        path, _, query = target.partition("?")
        return self.route(method, path, query, body)

    # -- routing -------------------------------------------------------

    def route(self, method: str, path: str, query: str,
              body: bytes) -> Response:
        """Dispatch one request; returns (status, body, type, headers)."""
        if path == "/healthz":
            if method != "GET":
                return self._error(405, "use GET")
            return self._json(200, self.scheduler.health())

        if path == "/metrics":
            if method != "GET":
                return self._error(405, "use GET")
            snapshot = self.scheduler.metrics_snapshot()
            if "format=prom" in query:
                return 200, render_prometheus(snapshot), \
                    "text/plain; version=0.0.4", {}
            return self._json(200, snapshot)

        if path == "/jobs":
            if method == "GET":
                return self._json(200, {
                    "jobs": [
                        job.summary()
                        for _id, job in sorted(self.scheduler.jobs.items())
                    ]
                })
            if method == "POST":
                return self._submit(body)
            return self._error(405, "use GET or POST")

        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, action = rest.partition("/")
            job = self.scheduler.jobs.get(job_id)
            if job is None:
                return self._error(404, f"unknown job {job_id!r}")
            if action == "" and method == "GET":
                return self._json(200, job.status())
            if (action == "cancel" and method == "POST") or \
                    (action == "" and method == "DELETE"):
                cancelled = self.scheduler.cancel(job_id)
                return self._json(200, {
                    "id": job_id,
                    "cancelled": cancelled,
                    "state": job.state,
                })
            return self._error(405, "unsupported job action")

        return self._error(404, f"no route for {path!r}")

    def _submit(self, body: bytes) -> Response:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return self._error(400, "request body is not valid JSON")
        try:
            request = parse_job_request(payload)
        except ProtocolError as exc:
            return self._error(400, str(exc))
        try:
            job = self.scheduler.submit(request)
        except DrainingError as exc:
            return self._error(503, str(exc))
        except RetryableError as exc:
            # Retry-After is fractional seconds: nonstandard HTTP but
            # exact — every consumer is our own client/loadtest stack.
            return self._error(
                429, str(exc),
                headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
        return self._json(200, job.summary())

    @staticmethod
    def _json(status: int, doc: Dict[str, Any]) -> Response:
        return status, json.dumps(doc, sort_keys=True), \
            "application/json", {}

    @staticmethod
    def _error(status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> Response:
        return status, json.dumps({"error": message}), \
            "application/json", dict(headers or {})


# ----------------------------------------------------------------------
# long-running entry point (repro serve)
# ----------------------------------------------------------------------

async def serve_async(
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int = 2,
    store: Any = None,
    trace_dir: Optional[Union[str, Path]] = None,
    engine: str = "reference",
    drain_timeout: Optional[float] = None,
    ready: Optional["threading.Event"] = None,
    stop_event: Optional[asyncio.Event] = None,
    scheduler: Optional[Scheduler] = None,
    log: Callable[..., Any] = print,
    max_queued: int = 0,
    rate: Optional[float] = None,
    burst: Optional[float] = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and exit.

    ``store`` is anything :func:`repro.experiments.store.open_store`
    accepts — or an already-open store object.  ``engine`` picks the
    workers' L1D implementation (results are engine-independent).
    ``max_queued``/``rate``/``burst`` configure the cluster scheduler's
    admission control (0/None = off).  Returns the process exit code
    (0 = drained clean, 1 = drain timed out, remaining jobs cancelled).
    """
    from repro.experiments.store import open_store

    if scheduler is None:
        opened = store if hasattr(store, "get") else open_store(store)
        scheduler = ClusterScheduler(store=opened, workers=workers,
                                     trace_dir=trace_dir, engine=engine,
                                     max_queued=max_queued,
                                     rate=rate, burst=burst)
    await scheduler.start()
    app = ServeApp(scheduler)
    server = await asyncio.start_server(app.handle, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]

    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform
    if ready is not None:
        ready.port = bound_port  # type: ignore[attr-defined]
        ready.set()
    log(f"repro-serve listening on http://{host}:{bound_port} "
        f"({workers} workers)", flush=True)
    try:
        await stop.wait()
        log("repro-serve draining ...", flush=True)
        scheduler.draining = True  # reject new jobs while /healthz answers
        clean = await scheduler.drain(timeout=drain_timeout)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
    log(f"repro-serve drained {'clean' if clean else 'with stragglers'}; "
        f"bye", flush=True)
    return 0 if clean else 1


# ----------------------------------------------------------------------
# in-process harness (tests, benchmarks)
# ----------------------------------------------------------------------

class ServerThread:
    """A real server on a daemon thread with an ephemeral port.

    ::

        with ServerThread(store=tmp_path / "store") as srv:
            client = srv.client()
            job = client.submit(cell_request("MM", "baseline", sms=1))

    Accepts the same injection points as :class:`Scheduler`, so harness
    tests can run stub work functions on a thread pool while the full
    integration tests exercise real process workers.
    """

    def __init__(self, host: str = "127.0.0.1", workers: int = 1,
                 store: Any = None,
                 trace_dir: Optional[Union[str, Path]] = None,
                 drain_timeout: Optional[float] = 30.0,
                 scheduler_cls: type = Scheduler,
                 **scheduler_kwargs: Any) -> None:
        self._host = host
        self._workers = workers
        self._store = store
        self._trace_dir = trace_dir
        self._drain_timeout = drain_timeout
        self._scheduler_cls = scheduler_cls
        self._scheduler_kwargs = scheduler_kwargs
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self.scheduler: Optional[Scheduler] = None
        self.port: Optional[int] = None
        self.exit_code: Optional[int] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        self.port = getattr(self._ready, "port", None)
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        from repro.experiments.store import open_store

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        store = self._store if hasattr(self._store, "get") \
            else open_store(self._store if self._store is None
                            else str(self._store))
        self.scheduler = self._scheduler_cls(
            store=store, workers=self._workers,
            trace_dir=self._trace_dir, **self._scheduler_kwargs)
        self.exit_code = await serve_async(
            host=self._host, port=0, scheduler=self.scheduler,
            drain_timeout=self._drain_timeout, ready=self._ready,
            stop_event=self._stop, log=lambda *a, **k: None,
        )

    def stop(self) -> Optional[int]:
        """Signal drain and join the thread; returns the exit code."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        return self.exit_code

    def client(self, timeout: float = 60.0) -> ServeClient:
        from repro.serve.client import ServeClient

        assert self.port is not None, "server not started"
        return ServeClient(host=self._host, port=self.port, timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
