"""Cluster scheduling: sharded workers, fair queueing, admission control.

:class:`ClusterScheduler` extends the single-queue
:class:`~repro.serve.scheduler.Scheduler` into the horizontally scaled
service shape the ROADMAP asks for.  Same resolution pipeline
(coalesce -> store -> queue), same content addresses, four new layers:

**Sharding.**  Cold cells are assigned to a worker by their content
address (:func:`shard_of` over the fingerprint hash), one admission
queue per worker.  The mapping is deterministic, so two submissions of
the same cell always land on the same shard and the coalescing map
stays the only dedup point; the content-addressed store remains the
cross-worker coordination point (atomic ``put`` under an unchanged
key).  There is deliberately no work stealing: a cell's shard is a pure
function of its identity, which keeps bulk-sweep placement reproducible
and lets every worker's predictor/trace caches stay hot for "its"
cells.

**Weighted fair queueing.**  Within a priority class, each shard orders
cells by start-time fair queueing over the submitting client: a cell's
virtual finish tag is ``max(vtime, client's last finish) + 1/weight``.
A bulk client flooding 500 cells cannot starve an interactive client —
the interactive cell's tag sorts just after the flood's *first* cell,
not after all 500.  Priority still dominates (interactive < bulk <
refine); fairness breaks ties inside a class.

**Admission control.**  A bounded admission queue (``max_queued``
cells) and an optional per-client token bucket (``rate`` cells/sec,
``burst`` capacity).  Both reject with :class:`RetryableError`
subclasses carrying a concrete ``retry_after`` hint, which the HTTP
layer maps to ``429 Too Many Requests`` + ``Retry-After``.  Draining
(503) still wins over throttling.

**Crash recovery.**  A worker process dying breaks the whole
``ProcessPoolExecutor``; every in-flight future fails with
``BrokenExecutor`` at once.  The first failure of a pool generation
replaces the pool (``workers.restarts_total``), and each failed cell is
requeued once (``cells.requeued``) at its original priority.  A cell
that fails again after a restart settles as a normal unit failure.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.serve.protocol import JobRequest
from repro.serve.jobs import Job
from repro.serve.scheduler import Scheduler, _CellEntry
from repro.utils import wallclock


class RetryableError(RuntimeError):
    """Submission refused temporarily (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        #: Seconds the client should back off before resubmitting.
        self.retry_after = max(0.0, float(retry_after))


class QueueFullError(RetryableError):
    """The bounded admission queue cannot take this job's cells."""


class RateLimitedError(RetryableError):
    """The submitting client exhausted its token bucket."""


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard for a content address (hex digest string).

    Uses the leading 64 bits of the key itself — the key is already a
    SHA-256 over the cell's canonical fingerprint, so no extra hashing
    (and no process-seeded ``hash()``) is needed for uniformity.
    """
    if shards <= 1:
        return 0
    return int(key[:16], 16) % shards


class TokenBucket:
    """Classic token bucket; refilled lazily from an injectable clock."""

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock")

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = wallclock.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None \
            else max(1.0, self.rate)
        self._tokens = self.burst
        self._clock = clock
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now

    def take(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; False (and no debit) if not."""
        self._refill()
        if self._tokens + 1e-12 >= tokens:
            self._tokens -= tokens
            return True
        return False

    def wait_time(self, tokens: float = 1.0) -> float:
        """Seconds until ``take(tokens)`` could succeed."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class ClusterScheduler(Scheduler):
    """Multi-worker scheduler with fairness, backpressure and recovery.

    Keyword-only parameters on top of :class:`Scheduler`:

    max_queued:
        Bound on queued (not yet started) cells across all shards.
        A submission whose cells would exceed it raises
        :class:`QueueFullError`.  0 (default) disables the bound.
    rate / burst:
        Per-client token bucket: ``rate`` cells per second with a
        ``burst`` ceiling (defaults to ``max(1, rate)``).  ``None``
        (default) disables rate limiting.
    client_weights / default_weight:
        Fair-queueing weights; a client with weight 2 gets twice the
        scheduling share of a weight-1 client within a priority class.
    requeue_limit:
        How many times a cell may be requeued after worker crashes
        before its failure is surfaced (default 1, per the drop-once
        recovery contract).
    pool_factory:
        Builds replacement executors after a crash (and the initial
        one, when no ``pool`` was injected).  Defaults to a
        ``ProcessPoolExecutor`` sized to ``workers``.
    clock:
        Monotonic time source for the token buckets (tests inject a
        fake to make refill deterministic).
    """

    def __init__(self, *, max_queued: int = 0,
                 rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 client_weights: Optional[Mapping[str, float]] = None,
                 default_weight: float = 1.0,
                 requeue_limit: int = 1,
                 pool_factory: Optional[Callable[[], Executor]] = None,
                 clock: Callable[[], float] = wallclock.monotonic,
                 **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.max_queued = max(0, int(max_queued))
        self.rate = rate if rate is None else float(rate)
        self.burst = burst if burst is None else float(burst)
        self.requeue_limit = max(0, int(requeue_limit))
        self._weights: Dict[str, float] = dict(client_weights or {})
        self._default_weight = max(1e-9, float(default_weight))
        self._pool_factory = pool_factory
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._shards = self.workers
        self._shard_queues: List["asyncio.PriorityQueue[Any]"] = []
        self._vtime: List[float] = []
        self._finish: List[Dict[str, float]] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self._pool is None and self._pool_factory is not None:
            self._pool = self._pool_factory()
            self._owns_pool = True
        self._shard_queues = [
            asyncio.PriorityQueue() for _ in range(self._shards)
        ]
        self._vtime = [0.0] * self._shards
        self._finish = [{} for _ in range(self._shards)]
        await super().start()

    # -- admission control ---------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        if not self.draining:        # draining (503) outranks throttling
            self._admit(request)
        return super().submit(request)

    def _admit(self, request: JobRequest) -> None:
        cells = max(1, len(request.units))
        if self.max_queued:
            depth = self.queue_depth()
            if depth + cells > self.max_queued:
                self.metrics.jobs_throttled_queue += 1
                raise QueueFullError(
                    f"admission queue full ({depth}/{self.max_queued} "
                    f"cells queued; job needs {cells})",
                    retry_after=self._drain_estimate(depth),
                )
        if self.rate is not None:
            bucket = self._buckets.get(request.client)
            if bucket is None:
                bucket = self._buckets[request.client] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            if not bucket.take(float(cells)):
                self.metrics.jobs_throttled_rate += 1
                raise RateLimitedError(
                    f"client {request.client!r} exceeded "
                    f"{self.rate:g} cells/s (burst {bucket.burst:g})",
                    retry_after=bucket.wait_time(float(cells)),
                )

    def _drain_estimate(self, depth: int) -> float:
        """Retry-After hint: roughly when the backlog will have moved."""
        total = sum(h.total for h in self.metrics.sim_latency.values())
        count = sum(h.count for h in self.metrics.sim_latency.values())
        per_cell = (total / count) if count else 0.1
        estimate = depth * per_cell / max(1, self.workers)
        return min(30.0, max(0.05, estimate))

    # -- sharded fair queueing -------------------------------------------

    def _enqueue(self, entry: _CellEntry, priority: int,
                 client: str) -> None:
        entry.priority = priority
        entry.client = client
        assert self._shard_queues, "ClusterScheduler.start() never awaited"
        shard = shard_of(entry.key, self._shards)
        weight = self._weights.get(client, self._default_weight)
        start = max(self._vtime[shard], self._finish[shard].get(client, 0.0))
        finish = start + 1.0 / weight
        self._finish[shard][client] = finish
        self._queue_seq += 1
        self._shard_queues[shard].put_nowait(
            (priority, finish, self._queue_seq, entry)
        )

    async def _dequeue(self, index: int) -> _CellEntry:
        _priority, finish, _seq, entry = await self._shard_queues[index].get()
        if finish > self._vtime[index]:
            self._vtime[index] = finish
        return entry

    def _task_done(self, index: int) -> None:
        self._shard_queues[index].task_done()

    def queue_depth(self) -> int:
        return sum(q.qsize() for q in self._shard_queues)

    # -- crash recovery --------------------------------------------------

    def _recover(self, entry: _CellEntry, exc: BaseException) -> bool:
        if not isinstance(exc, BrokenExecutor):
            return False
        self._restart_pool(entry.pool_gen)
        if entry.requeues >= self.requeue_limit:
            return False
        entry.requeues += 1
        entry.started = False
        entry.enqueued_at = wallclock.monotonic()
        self.metrics.cells_requeued += 1
        self._enqueue(entry, entry.priority, entry.client)
        return True

    def _recover_predict(self, pool_gen: int, exc: BaseException,
                         attempts: int) -> bool:
        if not isinstance(exc, BrokenExecutor):
            return False
        self._restart_pool(pool_gen)
        return attempts < self.requeue_limit

    def _restart_pool(self, failed_gen: int) -> None:
        """Replace a broken executor exactly once per generation.

        A dying worker fails *every* in-flight future with
        ``BrokenExecutor`` concurrently; the generation check makes the
        first such failure rebuild the pool and the rest reuse it.
        """
        if failed_gen < self._pool_gen:
            return
        self._pool_gen += 1
        self.metrics.worker_restarts += 1
        broken = self._pool
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        if self._pool_factory is not None:
            self._pool = self._pool_factory()
        else:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._owns_pool = True

    # -- introspection ---------------------------------------------------

    def health(self) -> Dict[str, Any]:
        doc = super().health()
        doc["worker_restarts"] = self.metrics.worker_restarts
        if self.max_queued:
            doc["max_queued"] = self.max_queued
        return doc

    def metrics_snapshot(self) -> Dict[str, Any]:
        store_stats = getattr(self.store, "stats", None)
        return self.metrics.snapshot(
            queued=self.queue_depth(),
            running=self.running_count(),
            jobs_active=self.active_jobs(),
            store_stats=store_stats.as_dict() if store_stats else None,
            draining=self.draining,
            uptime=wallclock.monotonic() - self.started_at,
            workers={
                "configured": self.workers,
                "pool_generation": self._pool_gen,
            },
        )
