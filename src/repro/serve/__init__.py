"""``repro.serve`` — long-running asynchronous simulation service.

Every other entry point in this repo (``repro run/compare/sweep/trace
replay``) is a one-shot CLI process: full interpreter start-up, full
re-simulation unless a store is warm, one caller at a time.  This
package turns the same engines into a service:

* :mod:`repro.serve.protocol` — job request/response shapes and their
  validation (a job is one cell, a sweep grid, or a trace replay);
* :mod:`repro.serve.scheduler` — the core: a priority job queue over a
  bounded ``ProcessPoolExecutor``, with identical in-flight requests
  **coalesced** onto one execution keyed by the store's content
  addresses (``cell_key``/``replay_cell_key``) and warm results served
  straight from the result store;
* :mod:`repro.serve.metrics` — counters and latency histograms behind
  the ``/metrics`` endpoint;
* :mod:`repro.serve.server` — a stdlib-only asyncio HTTP front end
  (``repro serve``) with ``/healthz``, ``/metrics``, job submission,
  polling, cancellation, and graceful drain on SIGTERM;
* :mod:`repro.serve.client` — a blocking HTTP client (``repro submit``
  and the test suite drive the service through it).

The whole package is stdlib-only (asyncio + http.client); simulation
semantics live entirely in the engines it schedules — nothing here may
alter what a simulation produces, only when and where it runs.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.protocol import (
    JobRequest,
    ProtocolError,
    UnitSpec,
    parse_job_request,
)
from repro.serve.scheduler import Scheduler, UnitExecutionError
from repro.serve.server import ServerThread, serve_async

__all__ = [
    "JobRequest",
    "LatencyHistogram",
    "ProtocolError",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerThread",
    "UnitExecutionError",
    "UnitSpec",
    "parse_job_request",
    "serve_async",
]
