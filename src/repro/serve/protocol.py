"""Job request/response protocol for the simulation service.

A **job** is what a client submits; it decomposes into one or more
**units**, each an independently schedulable cell:

* ``kind: "cell"``   — one timing simulation (interactive by default);
* ``kind: "sweep"``  — an apps x schemes timing grid (bulk by default);
* ``kind: "replay"`` — trace-driven functional replay of an
  apps x schemes grid (record-once semantics come from the shared
  trace directory, exactly like ``repro sweep --replay``).

Any kind may additionally set ``predict: true`` (tier-0 serving): cold
units are answered instantly from the analytical prediction tier
(:mod:`repro.predict`), flagged ``tier: "analytical"`` with calibrated
error bars, while the scheduler refines each one to an exact result in
the background.  ``predict`` never changes a unit's identity or store
key — the exact result lands under the same address it always had, and
an analytical answer is never persisted.

Units are identified by the result store's content addresses —
:func:`repro.experiments.store.cell_key` for timing cells and
:func:`~repro.experiments.store.replay_cell_key` for replay cells — so
the scheduler's coalescing map, the on-disk store and the CLI all agree
on what "the same request" means.

Everything here is plain data + validation; no asyncio, no I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.experiments.executor import Cell
from repro.experiments.store import (
    TRACE_VERSION,
    cell_fingerprint,
    replay_cell_key,
)
from repro.gpu.config import GPUConfig
from repro.experiments.runner import SCHEME_LABELS
from repro.workloads.registry import WORKLOADS

#: Lower number = scheduled first.  Interactive single-cell requests
#: jump ahead of queued bulk-sweep cells (admission priority; a cell
#: already on a worker is never preempted mid-simulation).
PRIORITY_INTERACTIVE = 0
PRIORITY_BULK = 1
#: Background refinements of analytical answers (see ``predict`` on a
#: job body) sort behind every client-requested cell.  Scheduler
#: internal — never a job's admission priority.
PRIORITY_REFINE = 2

PRIORITY_NAMES: Dict[str, int] = {
    "interactive": PRIORITY_INTERACTIVE,
    "bulk": PRIORITY_BULK,
}

JOB_KINDS = ("cell", "sweep", "replay")

#: Units execute in one of two modes; the mode picks the worker entry
#: point and the key namespace.
MODE_SIM = "sim"
MODE_REPLAY = "replay"


class ProtocolError(ValueError):
    """A malformed or unsatisfiable job request (HTTP 400)."""


@dataclass(frozen=True)
class UnitSpec:
    """One schedulable cell of work, hashable and JSON-representable."""

    mode: str                     # MODE_SIM | MODE_REPLAY
    abbr: str
    scheme: str
    num_sms: int = 4
    scale: float = 1.0
    seed: int = 0
    max_cycles: Optional[int] = None
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Non-blocking L1D mode.  Part of the semantics, so (unlike the
    #: engine) it flows into the cell's config and its store key.
    non_blocking: bool = False

    def _config(self) -> Optional[GPUConfig]:
        if not self.non_blocking:
            return None
        return GPUConfig().scaled(self.num_sms).with_l1d(non_blocking=True)

    def cell(self, engine: str = "reference") -> Cell:
        """The executor-level cell (timing-simulation units only).

        ``engine`` is the scheduler's deployment-wide L1D engine choice;
        it never enters the cell's key (the engines are bit-identical).
        """
        return Cell.make(
            self.abbr,
            self.scheme,
            num_sms=self.num_sms,
            scale=self.scale,
            seed=self.seed,
            max_cycles=self.max_cycles,
            config=self._config(),
            engine=engine,
            **dict(self.policy_kwargs),
        )

    def key(self) -> str:
        """Content address; the scheduler coalesces on this."""
        if self.mode == MODE_REPLAY:
            return replay_cell_key(
                self.abbr,
                self.scheme,
                self.cell().resolved_config(),
                scale=self.scale,
                seed=self.seed,
                policy_kwargs=dict(self.policy_kwargs),
            )
        return self.cell().key()

    def fingerprint(self) -> Dict[str, Any]:
        """Full content-addressed identity (failed-job payloads)."""
        fp = cell_fingerprint(
            self.abbr,
            self.scheme,
            self.cell().resolved_config(),
            scale=self.scale,
            seed=self.seed,
            max_cycles=self.max_cycles,
            policy_kwargs=dict(self.policy_kwargs),
        )
        if self.mode == MODE_REPLAY:
            fp["mode"] = "replay"
            fp["trace_version"] = TRACE_VERSION
        return fp

    def describe(self) -> Dict[str, Any]:
        """Compact human/JSON-facing identity (job status payloads)."""
        out = {
            "mode": self.mode,
            "app": self.abbr,
            "scheme": self.scheme,
            "sms": self.num_sms,
            "scale": self.scale,
            "seed": self.seed,
            "key": self.key(),
        }
        if self.non_blocking:
            out["non_blocking"] = True
        return out

    def meta(self) -> Dict[str, Any]:
        """Store metadata, matching what the sweep executors write."""
        meta = {
            "abbr": self.abbr,
            "scheme": self.scheme,
            "num_sms": self.num_sms,
            "scale": self.scale,
            "seed": self.seed,
        }
        if self.mode == MODE_REPLAY:
            meta["mode"] = "replay"
        if self.non_blocking:
            meta["non_blocking"] = True
        return meta

    def worker_payload(self) -> Dict[str, Any]:
        """Picklable argument for the replay worker entry point."""
        return {
            "abbr": self.abbr,
            "scheme": self.scheme,
            "num_sms": self.num_sms,
            "scale": self.scale,
            "seed": self.seed,
            "policy_kwargs": dict(self.policy_kwargs),
            "non_blocking": self.non_blocking,
        }


@dataclass
class JobRequest:
    """A validated job: its kind, admission priority, and unit list."""

    kind: str
    priority: int
    units: List[UnitSpec] = field(default_factory=list)
    #: Tier-0 serving: answer every cold unit analytically (instant,
    #: flagged ``tier: "analytical"`` with error bars) and let the
    #: scheduler refine it to an exact result in the background.  Never
    #: part of a unit's identity — the store keys are unchanged.
    predict: bool = False
    #: Self-reported client identity.  The cluster scheduler keys its
    #: token buckets and weighted-fair queueing on it; never part of a
    #: unit's identity or store key.
    client: str = "anonymous"

    def describe(self) -> Dict[str, Any]:
        doc = {
            "kind": self.kind,
            "priority": self.priority,
            "units": [u.describe() for u in self.units],
        }
        if self.predict:
            doc["predict"] = True
        if self.client != "anonymous":
            doc["client"] = self.client
        return doc


# ----------------------------------------------------------------------
# request builders (client + CLI convenience)
# ----------------------------------------------------------------------

def cell_request(app: str, scheme: str, *, sms: int = 4, scale: float = 1.0,
                 seed: int = 0, max_cycles: Optional[int] = None,
                 priority: Optional[str] = None,
                 policy_kwargs: Optional[Mapping[str, Any]] = None,
                 non_blocking: bool = False, predict: bool = False,
                 client: Optional[str] = None,
                 ) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "kind": "cell", "app": app, "scheme": scheme, "sms": sms,
        "scale": scale, "seed": seed,
    }
    if max_cycles is not None:
        body["max_cycles"] = max_cycles
    if priority is not None:
        body["priority"] = priority
    if policy_kwargs:
        body["policy_kwargs"] = dict(policy_kwargs)
    if non_blocking:
        body["non_blocking"] = True
    if predict:
        body["predict"] = True
    if client is not None:
        body["client"] = client
    return body


def sweep_request(apps: Iterable[str], schemes: Iterable[str], *,
                  sms: int = 4, scale: float = 1.0,
                  seed: int = 0, priority: Optional[str] = None,
                  non_blocking: bool = False, predict: bool = False,
                  client: Optional[str] = None,
                  ) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "kind": "sweep", "apps": list(apps), "schemes": list(schemes),
        "sms": sms, "scale": scale, "seed": seed,
    }
    if priority is not None:
        body["priority"] = priority
    if non_blocking:
        body["non_blocking"] = True
    if predict:
        body["predict"] = True
    if client is not None:
        body["client"] = client
    return body


def replay_request(apps: Iterable[str], schemes: Iterable[str], *,
                   sms: int = 4, scale: float = 1.0,
                   seed: int = 0, priority: Optional[str] = None,
                   non_blocking: bool = False, predict: bool = False,
                   client: Optional[str] = None,
                   ) -> Dict[str, Any]:
    body = sweep_request(apps, schemes, sms=sms, scale=scale, seed=seed,
                         priority=priority, non_blocking=non_blocking,
                         predict=predict, client=client)
    body["kind"] = "replay"
    return body


# ----------------------------------------------------------------------
# parsing / validation
# ----------------------------------------------------------------------

def parse_job_request(payload: Any) -> JobRequest:
    """Validate a client JSON body into a :class:`JobRequest`.

    Raises :class:`ProtocolError` (mapped to HTTP 400) on anything the
    scheduler could not execute: unknown kind/app/scheme, bad numeric
    fields, empty grids.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("job request must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            f"unknown job kind {kind!r}; expected one of {list(JOB_KINDS)}"
        )

    apps = _parse_names(payload, "app", "apps")
    schemes = _parse_names(payload, "scheme", "schemes", upper=False)
    if kind == "cell" and (len(apps) != 1 or len(schemes) != 1):
        raise ProtocolError(
            "kind 'cell' takes exactly one app and one scheme "
            "(use kind 'sweep' for grids)"
        )
    for app in apps:
        if app not in WORKLOADS:
            raise ProtocolError(
                f"unknown app {app!r}; expected one of {sorted(WORKLOADS)}"
            )
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ProtocolError(
                f"unknown scheme {scheme!r}; "
                f"expected one of {sorted(SCHEME_LABELS)}"
            )

    sms = _parse_int(payload, "sms", default=4, minimum=1)
    seed = _parse_int(payload, "seed", default=0, minimum=0)
    scale = _parse_float(payload, "scale", default=1.0)
    max_cycles = payload.get("max_cycles")
    if max_cycles is not None:
        if not isinstance(max_cycles, int) or max_cycles < 1:
            raise ProtocolError("max_cycles must be a positive integer")
    if kind != "cell" and max_cycles is not None:
        raise ProtocolError("max_cycles is only valid for kind 'cell'")
    policy_kwargs = payload.get("policy_kwargs", {})
    if not isinstance(policy_kwargs, dict):
        raise ProtocolError("policy_kwargs must be a JSON object")
    non_blocking = payload.get("non_blocking", False)
    if not isinstance(non_blocking, bool):
        raise ProtocolError("non_blocking must be a boolean")
    predict = payload.get("predict", False)
    if not isinstance(predict, bool):
        raise ProtocolError("predict must be a boolean")
    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client.strip() \
            or len(client) > 64:
        raise ProtocolError(
            "client must be a non-empty string of at most 64 characters"
        )
    client = client.strip()
    if predict and non_blocking:
        raise ProtocolError(
            "predict has no analytical model for the non-blocking L1D; "
            "submit without predict for exact non_blocking results"
        )

    mode = MODE_REPLAY if kind == "replay" else MODE_SIM
    units = [
        UnitSpec(
            mode=mode,
            abbr=app,
            scheme=scheme,
            num_sms=sms,
            scale=scale,
            seed=seed,
            max_cycles=max_cycles,
            policy_kwargs=tuple(sorted(policy_kwargs.items())),
            non_blocking=non_blocking,
        )
        for app in apps
        for scheme in schemes
    ]
    priority = _parse_priority(payload.get("priority"), len(units))
    return JobRequest(kind=kind, priority=priority, units=units,
                      predict=predict, client=client)


def _parse_names(payload: Dict[str, Any], singular: str, plural: str,
                 upper: bool = True) -> List[str]:
    raw = payload.get(plural, payload.get(singular))
    if raw is None:
        raise ProtocolError(f"missing {singular!r} (or {plural!r})")
    names = [raw] if isinstance(raw, str) else raw
    if not isinstance(names, list) or not names or not all(
        isinstance(n, str) and n.strip() for n in names
    ):
        raise ProtocolError(
            f"{plural!r} must be a non-empty string or list of strings"
        )
    out = []
    for name in names:
        name = name.strip()
        out.append(name.upper() if upper else name)
    return out


def _parse_int(payload: Dict[str, Any], name: str, default: int,
               minimum: int) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ProtocolError(f"{name} must be an integer >= {minimum}")
    return value


def _parse_float(payload: Dict[str, Any], name: str, default: float) -> float:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{name} must be a number")
    if not value > 0:
        raise ProtocolError(f"{name} must be > 0")
    return float(value)


def _parse_priority(raw: Any, n_units: int) -> int:
    if raw is None:
        return PRIORITY_INTERACTIVE if n_units == 1 else PRIORITY_BULK
    if isinstance(raw, str) and raw in PRIORITY_NAMES:
        return PRIORITY_NAMES[raw]
    if isinstance(raw, int) and not isinstance(raw, bool) \
            and raw in PRIORITY_NAMES.values():
        return raw
    raise ProtocolError(
        f"priority must be one of {sorted(PRIORITY_NAMES)} (or 0/1)"
    )
