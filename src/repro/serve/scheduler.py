"""The service core: priority scheduling with request coalescing.

One :class:`Scheduler` owns a result store, a bounded
``ProcessPoolExecutor`` and a priority queue of cell executions.  The
resolution path for every unit of every job:

1. **Coalesce** — if an identical cell (same content address) is
   already in flight, attach to its future; N concurrent submissions
   of a cold cell cost exactly one simulation.
2. **Store** — a warm cell is served straight from the result store
   (sub-millisecond, no queue, no worker).
3. **Queue** — a cold cell is enqueued with its job's priority.
   Interactive (single-cell) jobs sort ahead of bulk sweep cells, so a
   user poking at one configuration is not stuck behind a 40-cell
   sweep; FIFO order breaks ties within a priority class.  Admission
   priority only — a cell already on a worker runs to completion.

Jobs submitted with ``predict: true`` take the tier-0 path instead: a
warm cell is still served exact from the store, but a cold cell gets an
instant analytical answer (flagged ``tier: "analytical"`` with error
bars) and a background refinement is enqueued at the lowest priority.
The refinement runs the normal exact pipeline — same worker entry
point, same ``store.put`` under the unchanged content address — so the
exact result supersedes the analytical one for every later request.
Analytical answers are never persisted, and refinements are best-effort:
queued ones are dropped at drain.

Every scheduling decision increments a counter or observes a histogram
on :class:`~repro.serve.metrics.ServeMetrics`, so the acceptance tests
assert "N submissions, 1 simulation" on counters, never wall clock.

The scheduler is pure asyncio (single event loop); the only threads are
the executor's worker processes.  State mutations happen between
awaits, so the coalescing map needs no locks.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.experiments.executor import Cell, simulate_cell
from repro.experiments.store import MemoryStore
from repro.gpu.simulator import SimResult
from repro.serve import jobs as jobstates
from repro.serve.jobs import Job, predict_unit, replay_unit
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    MODE_REPLAY,
    PRIORITY_REFINE,
    JobRequest,
    UnitSpec,
)
from repro.utils import wallclock


class DrainingError(RuntimeError):
    """Submission refused: the service is draining (HTTP 503)."""


class UnitExecutionError(RuntimeError):
    """One unit failed; carries the cell's content-addressed identity."""

    def __init__(self, spec: UnitSpec, key: str, cause: BaseException) -> None:
        self.spec = spec
        self.key = key
        self.cause = cause
        super().__init__(
            f"unit {spec.abbr}/{spec.scheme} ({key[:12]}) failed: "
            f"{type(cause).__name__}: {cause}"
        )

    def payload(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "unit": self.spec.describe(),
            "fingerprint": self.spec.fingerprint(),
            "error": f"{type(self.cause).__name__}: {self.cause}",
        }


class _CellEntry:
    """One in-flight cell execution, shared by all coalesced waiters."""

    __slots__ = ("key", "spec", "future", "subscribers", "enqueued_at",
                 "started", "abandoned", "predicted_at", "client",
                 "priority", "requeues", "pool_gen")

    def __init__(self, key: str, spec: UnitSpec,
                 future: "asyncio.Future[Dict[str, Any]]") -> None:
        self.key = key
        self.spec = spec
        self.future = future
        self.subscribers = 1
        self.enqueued_at = wallclock.monotonic()
        self.started = False
        self.abandoned = False      # every waiter cancelled before start
        #: When an analytical answer was returned for this cell (tier-0)
        #: — the exact result's arrival closes the supersede histogram.
        self.predicted_at: Optional[float] = None
        #: Submitting client identity (fair-scheduling tag) and the
        #: admission priority, recorded by ``_enqueue`` so a recovered
        #: cell re-enters the queue exactly where it would have been.
        self.client = "anonymous"
        self.priority = 0
        #: Crash-recovery bookkeeping: how many times this cell went
        #: back in the queue, and which pool generation ran it last.
        self.requeues = 0
        self.pool_gen = 0


class Scheduler:
    """Job admission, coalescing, and the worker pumps.

    Parameters
    ----------
    store:
        Result store (``MemoryStore`` default; pass a ``ResultStore``
        for warm restarts and cross-process sharing).
    workers:
        Worker processes — also the number of concurrent executions.
    trace_dir:
        Shared trace directory for replay units (record-once).
    engine:
        L1D implementation the workers run (``reference`` or ``fast``).
        A deployment-wide choice, never part of a unit's content address
        — the engines are bit-identical, so cells computed by either
        resolve (and warm) the same store entries.
    pool / sim_fn / replay_fn / predict_fn:
        Injection points for tests: a ``ThreadPoolExecutor`` plus stub
        work functions turn scheduling tests into fast, deterministic
        unit tests with no real simulations.
    """

    def __init__(self, store: Any = None, workers: int = 2,
                 trace_dir: Optional[Union[str, Path]] = None,
                 metrics: Optional[ServeMetrics] = None,
                 engine: str = "reference",
                 pool: Optional[Executor] = None,
                 sim_fn: Callable[[Cell], Dict[str, Any]] = simulate_cell,
                 replay_fn: Callable[
                     [Dict[str, Any], Optional[str]], Dict[str, Any]
                 ] = replay_unit,
                 predict_fn: Callable[
                     [Dict[str, Any], Optional[str]], Dict[str, Any]
                 ] = predict_unit) -> None:
        self.store = store if store is not None else MemoryStore()
        self.workers = max(1, int(workers))
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.engine = engine
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._sim_fn = sim_fn
        self._replay_fn = replay_fn
        self._predict_fn = predict_fn
        self._pool = pool
        self._owns_pool = pool is None
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._pumps: List[asyncio.Task] = []
        self._in_flight: Dict[str, _CellEntry] = {}
        self.jobs: Dict[str, Job] = {}
        self._job_seq = 0
        self._queue_seq = 0
        #: Bumped each time the worker pool is replaced after a crash
        #: (see ClusterScheduler); entries record the generation that
        #: ran them so one broken pool triggers exactly one restart.
        self._pool_gen = 0
        self.draining = False
        self.started_at = wallclock.monotonic()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.PriorityQueue()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._pumps = [
            asyncio.create_task(self._pump(i), name=f"serve-pump-{i}")
            for i in range(self.workers)
        ]

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, let active jobs finish, stop the pumps.

        Returns True if every job settled within ``timeout``.
        """
        self.draining = True
        pending = [
            job.task for job in self.jobs.values()
            if job.task is not None and not job.task.done()
        ]
        clean = True
        if pending:
            done, not_done = await asyncio.wait(pending, timeout=timeout)
            clean = not not_done
            for task in not_done:
                task.cancel()
            if not_done:
                await asyncio.gather(*not_done, return_exceptions=True)
        await self._stop_pumps()
        return clean

    async def shutdown(self) -> None:
        """Immediate teardown (tests): cancel everything, free the pool."""
        self.draining = True
        for job in self.jobs.values():
            if job.task is not None and not job.task.done():
                job.task.cancel()
        await asyncio.gather(
            *(j.task for j in self.jobs.values() if j.task is not None),
            return_exceptions=True,
        )
        await self._stop_pumps()

    async def _stop_pumps(self) -> None:
        for pump in self._pumps:
            pump.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps = []
        if self._owns_pool and self._pool is not None:
            # repro-check: allow(R009) final pool join during shutdown:
            # the pumps are cancelled and no client work remains, so
            # blocking the loop here is the intended drain barrier
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- admission -----------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Admit one job and start its driver task (sync, no awaits)."""
        if self.draining:
            self.metrics.jobs_rejected += 1
            raise DrainingError("service is draining; not accepting jobs")
        self._job_seq += 1
        job = Job(id=f"job-{self._job_seq:06d}", request=request)
        self.jobs[job.id] = job
        job.task = asyncio.create_task(self._run_job(job), name=job.id)
        self.metrics.jobs_submitted += 1
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; False if unknown or already settled."""
        job = self.jobs.get(job_id)
        if job is None or job.done or job.task is None:
            return False
        job.task.cancel()
        return True

    # -- job driver ----------------------------------------------------

    async def _run_job(self, job: Job) -> None:
        job.state = jobstates.RUNNING
        tasks = [
            asyncio.create_task(self._resolve_unit(
                unit, job.request.priority,
                predict=job.request.predict,
                client=job.request.client,
            ))
            for unit in job.request.units
        ]
        try:
            payloads = await asyncio.gather(*tasks)
            job.results = [
                {"unit": unit.describe(), "result": payload}
                for unit, payload in zip(job.request.units, payloads)
            ]
            job.state = jobstates.DONE
            self.metrics.jobs_done += 1
        except asyncio.CancelledError:
            job.state = jobstates.CANCELLED
            self.metrics.jobs_cancelled += 1
            await self._reap(tasks)
        except UnitExecutionError as exc:
            job.state = jobstates.FAILED
            job.error = exc.payload()
            self.metrics.jobs_failed += 1
            await self._reap(tasks)
        except Exception as exc:  # defensive: never lose a job silently
            job.state = jobstates.FAILED
            job.error = {"error": f"{type(exc).__name__}: {exc}"}
            self.metrics.jobs_failed += 1
            await self._reap(tasks)
        finally:
            job.finished_at = wallclock.now()

    @staticmethod
    async def _reap(tasks: List["asyncio.Task"]) -> None:
        """Cancel and drain a failed/cancelled job's remaining unit
        tasks so no orphan waiter outlives its job (coalesced peers on
        other jobs are unaffected — they hold their own subscriptions).
        """
        for task in tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    # -- unit resolution -----------------------------------------------

    async def _resolve_unit(self, unit: UnitSpec, priority: int,
                            predict: bool = False,
                            client: str = "anonymous") -> Dict[str, Any]:
        self.metrics.cells_requested += 1
        key = unit.key()
        if predict:
            return await self._resolve_predicted(unit, key, client)

        entry = self._in_flight.get(key)
        if entry is not None:
            self.metrics.cells_coalesced += 1
            entry.subscribers += 1
            return await self._await_entry(entry)

        cached = self.store.get(key)
        if cached is not None:
            self.metrics.cells_store_hits += 1
            return cached.to_dict()

        entry = _CellEntry(key, unit, asyncio.get_running_loop().create_future())
        self._in_flight[key] = entry
        self._enqueue(entry, priority, client)
        return await self._await_entry(entry)

    async def _resolve_predicted(self, unit: UnitSpec, key: str,
                                 client: str = "anonymous",
                                 ) -> Dict[str, Any]:
        """Tier-0: exact from the store if warm, else an instant
        analytical answer plus a background exact refinement."""
        cached = self.store.get(key)
        if cached is not None:
            self.metrics.cells_store_hits += 1
            payload = cached.to_dict()
            payload["tier"] = "exact"   # response-only; never stored
            return payload
        loop = asyncio.get_running_loop()
        attempts = 0
        while True:
            pool_gen = self._pool_gen
            try:
                payload = await loop.run_in_executor(
                    self._pool, self._predict_fn,
                    unit.worker_payload(), self.trace_dir,
                )
                break
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                if self._recover_predict(pool_gen, exc, attempts):
                    attempts += 1
                    continue
                self.metrics.cells_failed += 1
                raise UnitExecutionError(unit, key, exc) from exc
        self.metrics.predict_answers += 1
        self._ensure_refinement(unit, key, client)
        return payload

    def _ensure_refinement(self, unit: UnitSpec, key: str,
                           client: str = "anonymous") -> None:
        """Queue the exact execution behind an analytical answer (once
        per cell: a refinement or plain request already in flight is
        reused, and later plain requests coalesce onto it as usual)."""
        entry = self._in_flight.get(key)
        if entry is None:
            entry = _CellEntry(
                key, unit, asyncio.get_running_loop().create_future()
            )
            # the initial subscription is the refinement itself (it
            # never cancels, so coalesced waiters can come and go
            # without abandoning the entry); nothing awaits the future,
            # so consume a failure before it can log as unretrieved
            entry.future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._in_flight[key] = entry
            self._enqueue(entry, PRIORITY_REFINE, client)
            self.metrics.refinements += 1
        if entry.predicted_at is None:
            entry.predicted_at = wallclock.monotonic()

    async def _await_entry(self, entry: _CellEntry) -> Dict[str, Any]:
        try:
            return await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            entry.subscribers -= 1
            if entry.subscribers <= 0 and not entry.started:
                # nobody wants it and no worker picked it up: abandon
                entry.abandoned = True
                self._in_flight.pop(entry.key, None)
            raise

    # -- queue discipline (override points for ClusterScheduler) -------

    def _enqueue(self, entry: _CellEntry, priority: int,
                 client: str) -> None:
        """Admit one cold cell to the execution queue."""
        entry.priority = priority
        entry.client = client
        assert self._queue is not None, "Scheduler.start() was never awaited"
        self._queue_seq += 1
        self._queue.put_nowait((priority, self._queue_seq, entry))

    async def _dequeue(self, index: int) -> _CellEntry:
        """Take the next cell for pump ``index`` (one pump per worker)."""
        assert self._queue is not None
        _priority, _seq, entry = await self._queue.get()
        return entry

    def _task_done(self, index: int) -> None:
        assert self._queue is not None
        self._queue.task_done()

    def _recover(self, entry: _CellEntry, exc: BaseException) -> bool:
        """Give a failed execution a second chance (crash recovery).

        Returns True when the cell was requeued and the failure must
        not settle its future.  The base scheduler never recovers;
        ClusterScheduler requeues cells whose worker process died.
        """
        return False

    def _recover_predict(self, pool_gen: int, exc: BaseException,
                         attempts: int) -> bool:
        """Same, for the in-loop tier-0 predict path."""
        return False

    # -- worker pumps --------------------------------------------------

    async def _pump(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._dequeue(index)
            try:
                if entry.abandoned:
                    continue
                entry.started = True
                self.metrics.queue_wait.observe(
                    wallclock.monotonic() - entry.enqueued_at
                )
                await self._execute(loop, entry)
            finally:
                self._task_done(index)

    async def _execute(self, loop: asyncio.AbstractEventLoop,
                       entry: _CellEntry) -> None:
        spec = entry.spec
        t0 = wallclock.monotonic()
        entry.pool_gen = self._pool_gen
        try:
            if spec.mode == MODE_REPLAY:
                worker_payload = dict(spec.worker_payload())
                worker_payload["engine"] = self.engine
                payload = await loop.run_in_executor(
                    self._pool, self._replay_fn,
                    worker_payload, self.trace_dir,
                )
            else:
                payload = await loop.run_in_executor(
                    self._pool, self._sim_fn, spec.cell(self.engine)
                )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if self._recover(entry, exc):
                return
            self.metrics.cells_failed += 1
            self._settle(entry,
                         error=UnitExecutionError(spec, entry.key, exc))
            return
        self.metrics.cells_simulated += 1
        self.metrics.sim_latency_for(spec.scheme).observe(
            wallclock.monotonic() - t0
        )
        self.store.put(entry.key, SimResult.from_dict(payload),
                       meta=spec.meta())
        if entry.predicted_at is not None:
            self.metrics.supersede_latency.observe(
                wallclock.monotonic() - entry.predicted_at
            )
        self._settle(entry, payload=payload)

    def _settle(self, entry: _CellEntry,
                payload: Optional[Dict[str, Any]] = None,
                error: Optional[BaseException] = None) -> None:
        self._in_flight.pop(entry.key, None)
        if entry.future.done():  # every waiter already detached
            return
        if error is not None:
            # consume the exception once so an all-waiters-cancelled
            # future never logs "exception was never retrieved"
            entry.future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            entry.future.set_exception(error)
        else:
            entry.future.set_result(payload)

    # -- introspection -------------------------------------------------

    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def running_count(self) -> int:
        return sum(1 for e in self._in_flight.values() if e.started)

    def active_jobs(self) -> int:
        return sum(1 for j in self.jobs.values() if not j.done)

    def metrics_snapshot(self) -> Dict[str, Any]:
        store_stats = getattr(self.store, "stats", None)
        return self.metrics.snapshot(
            queued=self.queue_depth(),
            running=self.running_count(),
            jobs_active=self.active_jobs(),
            store_stats=store_stats.as_dict() if store_stats else None,
            draining=self.draining,
            uptime=wallclock.monotonic() - self.started_at,
            workers={"configured": self.workers},
        )

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "workers": self.workers,
            "jobs_active": self.active_jobs(),
            "cells_queued": self.queue_depth(),
            "cells_running": self.running_count(),
        }
