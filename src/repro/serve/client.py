"""Blocking HTTP client for the simulation service.

``repro submit`` and the test suite talk to a running ``repro serve``
through this module; it is also the programmatic API for driving the
service from scripts::

    client = ServeClient(port=8642)
    job = client.submit(cell_request("BFS", "dlp", sms=2))
    done = client.wait(job["id"])
    payload = done["results"][0]["result"]     # SimResult.to_dict shape

Stdlib only (``http.client``); one connection per request, matching the
server's ``Connection: close`` discipline.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.jobs import TERMINAL_STATES
from repro.serve.protocol import (  # noqa: F401  (re-exported convenience)
    cell_request,
    replay_request,
    sweep_request,
)
from repro.utils import wallclock
from repro.utils.rng import DeterministicRng


class ServeError(RuntimeError):
    """Transport failure or non-2xx response from the service."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Any] = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class JobFailedError(ServeError):
    """A waited-on job settled as failed/cancelled; carries its status."""

    def __init__(self, status_doc: Dict[str, Any]) -> None:
        error = status_doc.get("error", {})
        super().__init__(
            f"job {status_doc.get('id')} {status_doc.get('state')}: "
            f"{error.get('error', 'no detail')}",
            body=status_doc,
        )
        self.job = status_doc


class ServeClient:
    """Talk to one ``repro serve`` instance.

    ``retries`` > 0 turns on transparent retry for transport failures
    and ``429 Too Many Requests``: exponential backoff with full jitter
    (AWS style — sleep a uniform fraction of the doubling ceiling), and
    a server-provided ``Retry-After`` wins over the computed backoff.
    Off by default so tests observe every response; ``repro submit``
    and the loadtest harness turn it on.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0, retries: int = 0,
                 backoff_base: float = 0.25, backoff_cap: float = 5.0,
                 rng: Optional[DeterministicRng] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng
        #: Telemetry for callers: how many 429s / transport errors were
        #: absorbed by retries over this client's lifetime.
        self.retried_throttles = 0
        self.retried_errors = 0

    # -- transport -----------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                ) -> Tuple[int, Any]:
        """One logical HTTP request; returns (status, decoded body).

        With ``retries`` enabled this may perform several round trips;
        the returned status is the final one (so a 429 that survives
        every retry is still surfaced to the caller).
        """
        attempt = 0
        while True:
            try:
                status, decoded, retry_after = \
                    self._roundtrip(method, path, body)
            except ServeError:
                if attempt >= self.retries:
                    raise
                self.retried_errors += 1
                delay = self._backoff(attempt, None)
            else:
                if status != 429 or attempt >= self.retries:
                    return status, decoded
                self.retried_throttles += 1
                delay = self._backoff(attempt, retry_after)
            attempt += 1
            time.sleep(delay)

    def _roundtrip(self, method: str, path: str,
                   body: Optional[Dict[str, Any]],
                   ) -> Tuple[int, Any, Optional[float]]:
        """One HTTP round trip; returns (status, body, Retry-After)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8", "replace")
        except OSError as exc:
            raise ServeError(
                f"cannot reach repro-serve at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()
        content_type = response.getheader("Content-Type", "")
        decoded: Any = raw
        if "json" in content_type:
            try:
                decoded = json.loads(raw) if raw else None
            except ValueError as exc:
                raise ServeError(
                    f"malformed JSON from service: {exc}",
                    status=response.status,
                ) from exc
        retry_after: Optional[float] = None
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        return response.status, decoded, retry_after

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        if retry_after is not None:
            return min(self.backoff_cap, max(0.0, retry_after))
        if self._rng is None:
            # deterministic per process, decorrelated across processes
            self._rng = DeterministicRng("serve-client-backoff",
                                         salt=os.getpid())
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return float(self._rng.random()) * ceiling

    def _get(self, path: str) -> Any:
        return self._checked("GET", path, None)

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, Any]]) -> Any:
        status, decoded = self.request(method, path, body)
        if status >= 400:
            message = decoded.get("error", str(decoded)) \
                if isinstance(decoded, dict) else str(decoded)
            raise ServeError(f"{method} {path} -> {status}: {message}",
                             status=status, body=decoded)
        return decoded

    # -- API -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._get("/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._get("/metrics")

    def metrics_prometheus(self) -> str:
        return self._get("/metrics?format=prom")

    def submit(self, job_body: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job body (see the builders in repro.serve.protocol);
        returns the job summary with its ``id``."""
        return self._checked("POST", "/jobs", job_body)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._get("/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._get(f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._checked("POST", f"/jobs/{job_id}/cancel", None)

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05, raise_on_failure: bool = True,
             ) -> Dict[str, Any]:
        """Poll until the job settles; returns its final status doc."""
        deadline = wallclock.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in TERMINAL_STATES:
                if raise_on_failure and doc.get("state") != "done":
                    raise JobFailedError(doc)
                return doc
            if wallclock.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {doc.get('state')!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)

    def run(self, job_body: Dict[str, Any], timeout: float = 300.0,
            ) -> Dict[str, Any]:
        """Submit + wait in one call; returns the final status doc."""
        job = self.submit(job_body)
        return self.wait(job["id"], timeout=timeout)
