"""Figure/table drivers: one function per experiment in the paper.

Each ``figN_data`` function computes the numbers the paper's figure
plots (normalized the same way); each ``render_figN`` turns them into
the ASCII rendering the benchmark harness prints.  Timing-based figures
share the memoised sweep in :mod:`repro.experiments.runner`, so running
every bench in one session simulates each (app, scheme) cell once.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.classify import classify_all
from repro.analysis.metrics import geometric_mean
from repro.analysis.report import (
    ascii_table,
    grouped_bars,
    normalized_summary,
    stacked_percent_rows,
)
from repro.analysis.reuse import RD_LABELS, rd_of_sequence
from repro.cache.tagarray import CacheGeometry
from repro.core.overhead import compute_overhead
from repro.experiments.cachesim import capacity_sweep, profile_reuse
from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    TRAFFIC_SCHEMES,
    harness_config,
    run_cell,
)
from repro.gpu.config import GPUConfig
from repro.workloads import ALL_APPS, CI_APPS, CS_APPS, make_workload, table2_rows

# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1_data(config: GPUConfig | None = None) -> List[Tuple[str, str]]:
    return (config or GPUConfig()).table1_rows()


def render_table1(config: GPUConfig | None = None) -> str:
    return ascii_table(
        ["Parameter", "Value"],
        table1_data(config),
        title="Table 1: GPU configuration",
    )


def table2_data():
    return table2_rows()


def render_table2() -> str:
    return ascii_table(
        ["Application", "Abbr.", "Suite", "Type", "Paper input", "Scaled input"],
        table2_data(),
        title="Table 2: benchmark applications",
    )


def overhead_data():
    return compute_overhead()


def render_overhead() -> str:
    report = compute_overhead()
    rows = [(name, f"{b} B") for name, b in report.rows()]
    rows.append(("overhead", f"{100 * report.overhead_fraction:.2f}%"))
    return ascii_table(
        ["Component", "Size"], rows, title="Section 4.3: DLP hardware overhead"
    )


# ---------------------------------------------------------------------------
# Fig. 2 — reuse-distance counting example
# ---------------------------------------------------------------------------


def fig2_data():
    """The worked example: accesses Addr0 Addr1 Addr2 Addr0 on a 2-way
    set; the second Addr0 access has RD 3 and misses under LRU."""
    geometry = CacheGeometry(num_sets=1, assoc=2)
    sequence = [0, 1, 2, 0]
    return {"sequence": sequence, "rds": rd_of_sequence(sequence, geometry)}


def render_fig2() -> str:
    data = fig2_data()
    rows = [
        (f"Addr {blk}", "-" if rd is None else str(rd))
        for blk, rd in zip(data["sequence"], data["rds"])
    ]
    return ascii_table(
        ["Access", "Reuse distance"],
        rows,
        title="Fig. 2: RD example (2-way set; the RD of Addr 0 is 3)",
    )


# ---------------------------------------------------------------------------
# Fig. 3 / Fig. 7 — reuse-distance distributions
# ---------------------------------------------------------------------------


def fig3_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """Per-application RDD fractions over the paper's four ranges."""
    config = harness_config(num_sms)
    out: Dict[str, List[float]] = {}
    for app in apps:
        profiler = profile_reuse(make_workload(app), config)
        out[app] = profiler.overall_fractions()
    return out


def render_fig3(data=None) -> str:
    data = data or fig3_data()
    return stacked_percent_rows(
        list(data),
        list(data.values()),
        RD_LABELS,
        title="Fig. 3: Reuse Distance Distribution per application",
    )


def fig7_data(num_sms: int = 4):
    """Per-memory-instruction RDDs for BFS (paper Fig. 7)."""
    config = harness_config(num_sms)
    profiler = profile_reuse(make_workload("BFS"), config)
    per_pc = profiler.pc_fractions()
    # present in ascending PC order with insnN labels like the paper
    items = sorted(per_pc.items())
    return {f"insn{i + 1}": fracs for i, (pc, fracs) in enumerate(items)}


def render_fig7(data=None) -> str:
    data = data or fig7_data()
    return stacked_percent_rows(
        list(data),
        list(data.values()),
        RD_LABELS,
        title="Fig. 7: RDD per memory instruction of BFS",
    )


# ---------------------------------------------------------------------------
# Fig. 4 — reuse-data miss rate vs capacity
# ---------------------------------------------------------------------------

CAPACITIES_KB = (16, 32, 64)


def fig4_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    config = harness_config(num_sms)
    out: Dict[str, Dict[int, float]] = {}
    for app in apps:
        sweep = capacity_sweep(make_workload(app), CAPACITIES_KB, config)
        out[app] = {kb: sweep[kb]["reuse_miss_rate"] for kb in CAPACITIES_KB}
    return out


def render_fig4(data=None) -> str:
    data = data or fig4_data()
    series = {
        f"{kb}KB": [data[app][kb] for app in data] for kb in CAPACITIES_KB
    }
    return grouped_bars(
        list(data),
        series,
        title="Fig. 4: reuse-data miss rate at 16/32/64 KB (compulsory excluded)",
    )


# ---------------------------------------------------------------------------
# Fig. 5 — IPC vs capacity (timing)
# ---------------------------------------------------------------------------


def fig5_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    out: Dict[str, Dict[str, float]] = {}
    for app in apps:
        base = run_cell(app, "baseline", num_sms).ipc
        out[app] = {
            "16KB": 1.0,
            "32KB": run_cell(app, "32kb", num_sms).ipc / base,
            "64KB": run_cell(app, "64kb", num_sms).ipc / base,
        }
    return out


def render_fig5(data=None) -> str:
    data = data or fig5_data()
    series = {
        kb: [data[app][kb] for app in data] for kb in ("16KB", "32KB", "64KB")
    }
    return grouped_bars(
        list(data),
        series,
        title="Fig. 5: IPC at 16/32/64 KB normalized to 16 KB",
    )


# ---------------------------------------------------------------------------
# Fig. 6 — memory access ratio
# ---------------------------------------------------------------------------


def fig6_data():
    rows = classify_all()
    return sorted(rows, key=lambda c: c.mem_access_ratio)


def render_fig6(data=None) -> str:
    data = data or fig6_data()
    rows = [
        (c.abbr, f"{100 * c.mem_access_ratio:.2f}%", c.predicted_type, c.paper_type)
        for c in data
    ]
    return ascii_table(
        ["App", "Memory access ratio", "Predicted", "Paper (Table 2)"],
        rows,
        title="Fig. 6: memory access ratios (sorted; CS/CI threshold 1%)",
    )


# ---------------------------------------------------------------------------
# Figs. 10-13 — policy comparison (timing)
# ---------------------------------------------------------------------------


def _group_geomeans(per_app: Dict[str, Dict[str, float]], schemes) -> Dict[str, Dict[str, float]]:
    means: Dict[str, Dict[str, float]] = {}
    for group, members in (("CS", CS_APPS), ("CI", CI_APPS)):
        present = [a for a in members if a in per_app]
        if present:
            means[group] = {
                s: geometric_mean([per_app[a][s] for a in present]) for s in schemes
            }
    return means


def _policy_metric(metric_fn, schemes, apps, num_sms: int):
    """Normalized per-app metric for each scheme plus CS/CI geomeans."""
    per_app: Dict[str, Dict[str, float]] = {}
    for app in apps:
        values = {s: metric_fn(run_cell(app, s, num_sms)) for s in schemes}
        base = values[schemes[0]]
        per_app[app] = {
            SCHEME_LABELS[s]: (values[s] / base if base else 0.0) for s in schemes
        }
    labels = [SCHEME_LABELS[s] for s in schemes]
    return per_app, _group_geomeans(per_app, labels), labels


def fig10_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """Normalized IPC for baseline / Stall-Bypass / Global-Protection /
    DLP / 32KB (Fig. 10, including the G.MEANS bars)."""
    return _policy_metric(lambda r: r.ipc, FIG10_SCHEMES, apps, num_sms)


def fig11a_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """Normalized L1D traffic: accesses the cache itself serviced."""
    return _policy_metric(
        lambda r: r.l1d.serviced_accesses, TRAFFIC_SCHEMES, apps, num_sms
    )


def fig11b_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """Normalized L1D evictions (replacements + write-evicts)."""
    return _policy_metric(
        lambda r: max(r.l1d.evictions_total, 1), TRAFFIC_SCHEMES, apps, num_sms
    )


def fig12a_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """L1D hit rate (not normalized — the paper plots the rate itself)."""
    per_app: Dict[str, Dict[str, float]] = {}
    for app in apps:
        per_app[app] = {
            SCHEME_LABELS[s]: run_cell(app, s, num_sms).l1d.hit_rate
            for s in TRAFFIC_SCHEMES
        }
    labels = [SCHEME_LABELS[s] for s in TRAFFIC_SCHEMES]
    return per_app, {}, labels


def fig12b_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """Normalized number of L1D hits."""
    return _policy_metric(
        lambda r: max(r.l1d.hits_total, 1), TRAFFIC_SCHEMES, apps, num_sms
    )


def fig13_data(apps: Sequence[str] = tuple(ALL_APPS), num_sms: int = 4):
    """Normalized interconnect traffic (bytes, both directions)."""
    return _policy_metric(
        lambda r: r.interconnect["total_bytes"], TRAFFIC_SCHEMES, apps, num_sms
    )


def render_policy_figure(data, title: str) -> str:
    per_app, means, labels = data
    return title + "\n" + normalized_summary(per_app, labels, means)


RENDERERS = {
    "table1": render_table1,
    "table2": render_table2,
    "overhead": render_overhead,
    "fig2": render_fig2,
    "fig3": render_fig3,
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
}
