"""Experiment runner: (workload, policy, config) -> SimResult.

This is the glue every figure driver uses.  Scheme names follow the
paper's figure legends; ``SCHEME_LABELS`` maps internal policy names to
them.  Results resolve through a module-level :class:`SweepExecutor`
(see :mod:`repro.experiments.executor`): by default an in-memory store
memoises cells per process — several figures share the same runs
(Fig. 10-13 all consume the baseline/SB/GP/DLP sweep) — and
:func:`configure` swaps in an on-disk store and/or a worker pool so
whole invocations share one warm store (``repro sweep --store DIR`` and
the benchmark harness do exactly that).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core import make_policy
from repro.experiments.executor import Cell, SweepExecutor
from repro.experiments.store import open_store
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GpuSimulator, SimResult
from repro.workloads import make_workload

#: Paper legend names for each scheme.
SCHEME_LABELS: Dict[str, str] = {
    "baseline": "16KB(Baseline)",
    "stall_bypass": "Stall-Bypass",
    "global_protection": "Global-Protection",
    "dlp": "DLP",
    "32kb": "32KB",
    "64kb": "64KB",
}

#: Fig. 10's scheme set, in legend order.
FIG10_SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp", "32kb")

#: Fig. 11-13 compare the bypassing schemes on the 16 KB cache.
TRAFFIC_SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")


def harness_config(num_sms: int = 4) -> GPUConfig:
    """The scaled configuration the benchmark harness runs (see
    EXPERIMENTS.md: per-SM machine identical to Table 1)."""
    return GPUConfig().scaled(num_sms)


def build_simulator(
    abbr: str,
    scheme: str = "baseline",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    max_cycles: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
    **policy_kwargs,
) -> GpuSimulator:
    """Construct (but do not run) a simulator for one experiment cell.

    ``engine`` selects the L1D implementation (``reference`` or
    ``fast``); results are bit-identical either way, so the choice never
    enters a cell's identity.
    """
    config = config or harness_config()
    if scheme in ("32kb", "64kb"):
        config = config.with_l1d_size_kb(int(scheme[:-2]))
        policy_name = "baseline"
    else:
        policy_name = scheme
    workload = make_workload(abbr, scale, seed=seed)
    return GpuSimulator(
        workload.kernels(),
        config,
        policy_factory=lambda: make_policy(policy_name, **policy_kwargs),
        max_cycles=max_cycles,
        engine=engine,
    )


def run_workload(
    abbr: str,
    policy: str = "baseline",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    engine: str = "reference",
    **policy_kwargs,
) -> SimResult:
    """Simulate one application under one scheme (uncached)."""
    sim = build_simulator(
        abbr, policy, config, scale, max_cycles, seed=seed, engine=engine,
        **policy_kwargs
    )
    return sim.run()


# ----------------------------------------------------------------------
# executor plumbing
# ----------------------------------------------------------------------

#: Module-level executor every cached entry point goes through.  The
#: default (in-memory store, serial) reproduces the old ``lru_cache``
#: behaviour exactly; :func:`configure` re-points it.
_executor = SweepExecutor()


def get_executor() -> SweepExecutor:
    return _executor


def set_executor(executor: SweepExecutor) -> SweepExecutor:
    """Install ``executor`` as the shared runner backend; returns the
    previous one (so tests can restore it).

    Deliberately process-local: workers never route sweeps through the
    shared backend (cells are simulated directly in the worker), so the
    parent-only swap is safe.
    """
    global _executor  # repro-check: allow(R004) parent-only swap, see docstring
    previous = _executor
    _executor = executor
    return previous


def configure(store: Optional[str] = None, jobs: int = 1) -> SweepExecutor:
    """Point the runner at an on-disk store and/or a worker pool.

    ``store`` is a directory path (``None`` keeps results in-process);
    ``jobs`` is the simulation worker count.  Returns the previous
    executor.
    """
    return set_executor(SweepExecutor(store=open_store(store), jobs=jobs))


def run_cell(abbr: str, scheme: str, num_sms: int = 4) -> SimResult:
    """Store-backed harness run for one (app, scheme) cell.

    Only harness-config runs go through the store; custom configs go
    through :func:`run_workload`.
    """
    return _executor.run_cell(Cell.make(abbr, scheme, num_sms=num_sms))


def run_sweep(
    apps: Sequence[str],
    schemes: Sequence[str],
    num_sms: int = 4,
) -> Dict[str, Dict[str, SimResult]]:
    """Run (and cache) the full app x scheme matrix.

    With ``configure(jobs=N)`` the grid's store misses simulate on N
    worker processes; results are identical to a serial run (the
    differential oracle in ``tests/oracle.py`` holds this invariant).
    """
    return _executor.run_sweep(apps, schemes, num_sms=num_sms)


def clear_cache() -> None:
    """Drop every stored cell in the active executor's store."""
    _executor.store.clear()
