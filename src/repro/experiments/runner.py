"""Experiment runner: (workload, policy, config) -> SimResult.

This is the glue every figure driver uses.  Scheme names follow the
paper's figure legends; ``SCHEME_LABELS`` maps internal policy names to
them.  Results are memoised per process because several figures share
the same runs (Fig. 10-13 all consume the baseline/SB/GP/DLP sweep).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.core import make_policy
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GpuSimulator, SimResult
from repro.workloads import make_workload

#: Paper legend names for each scheme.
SCHEME_LABELS: Dict[str, str] = {
    "baseline": "16KB(Baseline)",
    "stall_bypass": "Stall-Bypass",
    "global_protection": "Global-Protection",
    "dlp": "DLP",
    "32kb": "32KB",
    "64kb": "64KB",
}

#: Fig. 10's scheme set, in legend order.
FIG10_SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp", "32kb")

#: Fig. 11-13 compare the bypassing schemes on the 16 KB cache.
TRAFFIC_SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")


def harness_config(num_sms: int = 4) -> GPUConfig:
    """The scaled configuration the benchmark harness runs (see
    EXPERIMENTS.md: per-SM machine identical to Table 1)."""
    return GPUConfig().scaled(num_sms)


def build_simulator(
    abbr: str,
    scheme: str = "baseline",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    max_cycles: Optional[int] = None,
    **policy_kwargs,
) -> GpuSimulator:
    """Construct (but do not run) a simulator for one experiment cell."""
    config = config or harness_config()
    if scheme in ("32kb", "64kb"):
        config = config.with_l1d_size_kb(int(scheme[:-2]))
        policy_name = "baseline"
    else:
        policy_name = scheme
    workload = make_workload(abbr, scale)
    return GpuSimulator(
        workload.kernels(),
        config,
        policy_factory=lambda: make_policy(policy_name, **policy_kwargs),
        max_cycles=max_cycles,
    )


def run_workload(
    abbr: str,
    policy: str = "baseline",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    max_cycles: Optional[int] = None,
    **policy_kwargs,
) -> SimResult:
    """Simulate one application under one scheme (uncached)."""
    sim = build_simulator(abbr, policy, config, scale, max_cycles, **policy_kwargs)
    return sim.run()


@lru_cache(maxsize=None)
def _cached_cell(abbr: str, scheme: str, num_sms: int) -> SimResult:
    return run_workload(abbr, scheme, harness_config(num_sms))


def run_cell(abbr: str, scheme: str, num_sms: int = 4) -> SimResult:
    """Memoised harness run for one (app, scheme) cell.

    Only harness-config runs are cached; custom configs go through
    :func:`run_workload`.
    """
    return _cached_cell(abbr.upper(), scheme, num_sms)


def run_sweep(
    apps: Tuple[str, ...],
    schemes: Tuple[str, ...],
    num_sms: int = 4,
) -> Dict[str, Dict[str, SimResult]]:
    """Run (and cache) the full app x scheme matrix."""
    return {
        app: {scheme: run_cell(app, scheme, num_sms) for scheme in schemes}
        for app in apps
    }


def clear_cache() -> None:
    _cached_cell.cache_clear()
