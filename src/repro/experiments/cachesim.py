"""Functional (timing-free) cache simulation path.

Figures 3, 4 and 7 of the paper characterise *access streams*, not
timing, so they don't need the discrete-event machine.  This module
replays a workload's warp traces in an interleaving that mimics the GPU:
CTAs placed round-robin across SMs up to the residency limit, resident
warps served round-robin one memory instruction at a time (a good proxy
for fine-grained SIMT interleaving), each SM's stream fed to its own
profiler or functional cache.

The same path also drives the Fig. 4 capacity sweep (16/32/64 KB
reuse-data miss rates).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterator, List, Tuple

from repro.analysis.metrics import FunctionalCache, merge_functional
from repro.analysis.reuse import ReuseProfiler
from repro.cache.tagarray import CacheGeometry
from repro.gpu.coalescer import coalesce
from repro.gpu.config import GPUConfig
from repro.gpu.isa import MemOp
from repro.workloads.base import Workload


def _mem_ops(trace) -> Iterator[MemOp]:
    for op in trace:
        if isinstance(op, MemOp):
            yield op


def interleaved_accesses(
    workload: Workload, config: GPUConfig
) -> Iterator[Tuple[int, int, int, bool, int]]:
    """Yield (sm_id, block_addr, pc, is_write, warp_id) in a GPU-like
    interleaving.

    CTA placement is round-robin with ``max_ctas_per_sm`` residency;
    resident warps rotate, each contributing one memory instruction's
    coalesced requests per turn; finished warps are replaced by warps of
    the next pending CTA on that SM.  ``warp_id`` is the kernel-global
    warp index (``cta * warps_per_cta + warp``), the identity the trace
    recorder persists.
    """
    line = config.l1d.line_size
    for kernel in workload.kernels():
        pending: List[deque] = [deque() for _ in range(config.num_sms)]
        for cta in range(kernel.num_ctas):
            pending[cta % config.num_sms].append(cta)
        max_resident_warps = min(
            config.max_warps_per_sm,
            config.max_ctas_per_sm * kernel.warps_per_cta,
        )
        active: List[List[Tuple[int, Iterator[MemOp]]]] = [
            [] for _ in range(config.num_sms)
        ]

        def refill(sm: int) -> None:
            while (
                pending[sm]
                and len(active[sm]) + kernel.warps_per_cta <= max_resident_warps
            ):
                cta = pending[sm].popleft()
                for w in range(kernel.warps_per_cta):
                    active[sm].append(
                        (
                            cta * kernel.warps_per_cta + w,
                            _mem_ops(kernel.warp_trace(cta, w)),
                        )
                    )

        for sm in range(config.num_sms):
            refill(sm)

        while True:
            for sm in range(config.num_sms):
                warps = active[sm]
                i = 0
                while i < len(warps):
                    warp_id, ops = warps[i]
                    op = next(ops, None)
                    if op is None:
                        warps.pop(i)
                        continue
                    for block in coalesce(op.addrs, line):
                        yield sm, block, op.pc, op.is_write, warp_id
                    i += 1
                refill(sm)
            if not any(
                active[sm] or pending[sm] for sm in range(config.num_sms)
            ):
                break


def interleaved_streams(
    workload: Workload, config: GPUConfig
) -> Iterator[Tuple[int, int, int, bool]]:
    """Yield (sm_id, block_addr, pc, is_write) in a GPU-like interleaving.

    Thin view over :func:`interleaved_accesses` that drops the warp
    identity (the reuse profilers don't need it)."""
    for sm, block, pc, is_write, _warp in interleaved_accesses(workload, config):
        yield sm, block, pc, is_write


def profile_reuse(
    workload: Workload,
    config: GPUConfig | None = None,
    include_writes: bool = False,
) -> ReuseProfiler:
    """Aggregate RDD over all SMs (Figs. 3 and 7 input)."""
    config = config or GPUConfig()
    geometry = config.l1d.geometry()
    profilers = [ReuseProfiler(geometry) for _ in range(config.num_sms)]
    for sm, block, pc, is_write in interleaved_streams(workload, config):
        if is_write and not include_writes:
            continue
        profilers[sm].observe(block, pc)
    merged = profilers[0]
    for p in profilers[1:]:
        merged.merge(p)
    return merged


def capacity_sweep(
    workload: Workload,
    sizes_kb: Tuple[int, ...] = (16, 32, 64),
    config: GPUConfig | None = None,
) -> Dict[int, Dict[str, float]]:
    """Fig. 4: reuse-data miss rate per L1D capacity.

    The three capacities share one replay pass (one stream, three cache
    hierarchies per SM) so their streams are identical by construction.
    """
    config = config or GPUConfig()
    assoc_by_kb = {16: 4, 32: 8, 64: 16}
    caches: Dict[int, List[FunctionalCache]] = {}
    for kb in sizes_kb:
        geometry = CacheGeometry(
            config.l1d.num_sets, assoc_by_kb[kb], config.l1d.line_size,
            config.l1d.index_fn,
        )
        caches[kb] = [FunctionalCache(geometry) for _ in range(config.num_sms)]
    for sm, block, pc, is_write in interleaved_streams(workload, config):
        if is_write:
            continue
        for kb in sizes_kb:
            caches[kb][sm].access(block)
    return {kb: merge_functional(caches[kb]) for kb in sizes_kb}
