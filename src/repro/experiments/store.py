"""Content-addressed on-disk store for simulation results.

Every experiment cell — one ``(workload, scheme, config)`` simulation —
is identified by a key hashed over *everything that determines its
outcome*: the workload abbreviation, scale and seed, the scheme name and
policy kwargs, every :class:`~repro.gpu.config.GPUConfig` field, and a
simulator version stamp.  Identical cells therefore share one store
entry across processes and invocations, and any semantic change to the
simulator is isolated by bumping :data:`SIM_VERSION`.

**Versioning rule:** bump :data:`SIM_VERSION` whenever a change alters
what any simulation *produces* (counters, timing, policy behaviour).
Pure refactors that keep results bit-identical must not bump it — the
differential oracle (``tests/oracle.py``) is the check for that.

Two implementations share the same interface:

* :class:`MemoryStore` — per-process dict; the default memoisation layer
  (replaces the old ``lru_cache`` in the experiment runner).
* :class:`ResultStore` — directory of JSON payloads, shared across
  processes and invocations; what ``repro sweep --store DIR`` and the
  benchmark harness use.

Both count hits/misses/puts so tests can assert "the second sweep
simulated nothing" on counters instead of wall clock.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimResult
from repro.utils import wallclock

#: Bump on any change that alters simulation *semantics* (see module
#: docstring); stale entries keyed under older stamps are simply never
#: matched again and can be dropped with ``repro store clear``.
SIM_VERSION = "2"

#: Default on-disk location, overridable via the environment.
STORE_ENV_VAR = "REPRO_STORE"
DEFAULT_STORE_DIR = ".repro-store"


def default_store_dir() -> str:
    return os.environ.get(STORE_ENV_VAR, DEFAULT_STORE_DIR)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cell_fingerprint(
    abbr: str,
    scheme: str,
    config: GPUConfig,
    scale: float = 1.0,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
    sim_version: str = SIM_VERSION,
) -> Dict[str, Any]:
    """The full identity of one experiment cell, as plain JSON data.

    ``non_blocking`` is part of the cache *semantics* (unlike the engine
    choice), so it stays in the fingerprint when enabled; when off it is
    dropped so every pre-existing blocking-mode key is preserved.
    """
    config_dict = dataclasses.asdict(config)
    if not config_dict["l1d"].get("non_blocking"):
        config_dict["l1d"].pop("non_blocking", None)
    return {
        "abbr": abbr.upper(),
        "scheme": scheme,
        "scale": scale,
        "seed": seed,
        "max_cycles": max_cycles,
        "policy_kwargs": dict(policy_kwargs or {}),
        "config": config_dict,
        "sim_version": sim_version,
    }


def cell_key(
    abbr: str,
    scheme: str,
    config: GPUConfig,
    scale: float = 1.0,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
    sim_version: str = SIM_VERSION,
) -> str:
    """Content-address of one cell: SHA-256 over the canonical
    fingerprint JSON."""
    text = canonical_json(
        cell_fingerprint(
            abbr, scheme, config, scale, seed, max_cycles,
            policy_kwargs, sim_version,
        )
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# trace-aware keys (repro.trace)
# ----------------------------------------------------------------------

#: Bump whenever the trace *capture* semantics change (what the
#: functional interleaving emits, or the on-disk record contents).
TRACE_VERSION = "1"


def stream_fingerprint(
    abbr: str,
    config: GPUConfig,
    scale: float = 1.0,
    seed: int = 0,
    trace_version: str = TRACE_VERSION,
) -> Dict[str, Any]:
    """Identity of one workload's *access stream*, as plain JSON data.

    Deliberately narrower than :func:`cell_fingerprint`: only the fields
    that shape the coalesced L1D stream enter (CTA placement, residency,
    line granularity) — never the scheme, cache associativity or timing
    parameters.  Cells that differ only in those therefore share one
    recorded trace.
    """
    return {
        "abbr": abbr.upper(),
        "scale": scale,
        "seed": seed,
        "num_sms": config.num_sms,
        "max_ctas_per_sm": config.max_ctas_per_sm,
        "max_warps_per_sm": config.max_warps_per_sm,
        "line_size": config.l1d.line_size,
        "trace_version": trace_version,
    }


def trace_key(
    abbr: str,
    config: GPUConfig,
    scale: float = 1.0,
    seed: int = 0,
    trace_version: str = TRACE_VERSION,
) -> str:
    """Content-address of one recorded access stream."""
    text = canonical_json(
        stream_fingerprint(abbr, config, scale, seed, trace_version)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def replay_cell_key(
    abbr: str,
    scheme: str,
    config: GPUConfig,
    scale: float = 1.0,
    seed: int = 0,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content-address of one *replayed* cell.

    Replay results live in the same stores as timing results but under a
    distinct mode tag — a trace-driven functional replay and a full
    timing simulation of the same cell are different experiments and
    must never collide.
    """
    fp = cell_fingerprint(
        abbr, scheme, config, scale, seed, None, policy_kwargs,
    )
    fp["mode"] = "replay"
    fp["trace_version"] = TRACE_VERSION
    return hashlib.sha256(canonical_json(fp).encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Lookup/insert counters — the "was it cached?" oracle for tests."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}


class MemoryStore:
    """In-process result store (the default memoisation layer)."""

    def __init__(self) -> None:
        self._data: Dict[str, SimResult] = {}
        self._meta: Dict[str, Dict[str, Any]] = {}
        self.stats = StoreStats()

    def get(self, key: str) -> Optional[SimResult]:
        result = self._data.get(key)
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimResult,
            meta: Optional[Dict[str, Any]] = None) -> None:
        self._data[key] = result
        self._meta[key] = dict(meta or {})
        self.stats.puts += 1

    def ls(self) -> List[Dict[str, Any]]:
        return [
            {"key": key, **self._meta.get(key, {})}
            for key in sorted(self._data)
        ]

    def clear(self) -> int:
        count = len(self._data)
        self._data.clear()
        self._meta.clear()
        return count

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data


class ResultStore:
    """Directory-backed result store, shared across processes.

    Layout: one ``<key>.json`` file per cell under ``root``, holding
    ``{"meta": {...human-readable cell summary...}, "result": {...}}``
    where ``result`` is :meth:`SimResult.to_dict` output.  Writes are
    atomic (tmp file + ``os.replace``) so concurrent sweeps sharing a
    store directory never observe torn payloads.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return SimResult.from_dict(payload["result"])

    def put(self, key: str, result: SimResult,
            meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically publish one entry.

        The payload is staged in a per-process ``*.tmp.<pid>`` file,
        flushed and fsynced, then ``os.replace``d into place — so a
        reader (or a concurrent writer of the same key) only ever sees
        either no entry or one complete JSON payload, never a torn one,
        even if the writing process dies mid-``put``.  Failures clean up
        the staging file; a crash that skips cleanup leaves only a
        ``*.tmp.*`` orphan, which every read path ignores.
        """
        payload = {"meta": dict(meta or {}), "result": result.to_dict()}
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def ls(self) -> List[Dict[str, Any]]:
        entries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except FileNotFoundError:  # pruned/cleared by another worker
                continue
            except json.JSONDecodeError:  # torn/foreign file: skip, don't die
                continue
            entries.append({"key": path.stem, **payload.get("meta", {})})
        return entries

    def clear(self) -> int:
        count = 0
        for path in self.root.glob("*.json"):
            count += self._try_unlink(path)
        return count

    def prune(
        self,
        max_age: Optional[float] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Evict old entries; returns the number removed.

        ``max_age`` drops every entry whose file mtime is older than
        that many seconds (against ``now``, wall clock by default —
        tests pass an explicit ``now``).  ``max_entries`` then keeps
        only the newest N by mtime.  Either may be ``None``; calling
        with both ``None`` is a no-op.  A long-running service calls
        this periodically so a shared store directory cannot grow
        without bound.
        """
        if max_age is None and max_entries is None:
            return 0
        entries = []
        for path in self.root.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except FileNotFoundError:  # raced with a concurrent prune
                continue
        removed = 0
        if max_age is not None:
            if now is None:
                now = wallclock.now()
            cutoff = now - max_age
            survivors = []
            for mtime, path in entries:
                if mtime < cutoff:
                    removed += self._try_unlink(path)
                else:
                    survivors.append((mtime, path))
            entries = survivors
        if max_entries is not None and len(entries) > max_entries:
            entries.sort(key=lambda e: (e[0], e[1].name))
            excess = len(entries) - max_entries
            for _mtime, path in entries[:excess]:
                removed += self._try_unlink(path)
        return removed

    @staticmethod
    def _try_unlink(path: Path) -> int:
        try:
            path.unlink()
        except FileNotFoundError:
            return 0
        return 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()


def open_store(spec: Optional[str]):
    """``None`` -> fresh :class:`MemoryStore`; a path -> :class:`ResultStore`."""
    if spec is None:
        return MemoryStore()
    return ResultStore(spec)
