"""Parallel sweep executor: fan an experiment grid across processes.

The unit of work is a :class:`Cell` — one ``(workload, scheme, config)``
simulation.  :class:`SweepExecutor` resolves each cell against a result
store (see :mod:`repro.experiments.store`) and only simulates the
misses, either serially in-process (``jobs=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs>=2``).

Correctness invariants (enforced by the differential oracle in
``tests/oracle.py`` / ``tests/integration/test_executor_differential.py``):

* serial and parallel execution of the same grid yield bit-identical
  :class:`~repro.gpu.simulator.SimResult` payloads — each cell's
  workload RNG is seeded deterministically from the cell itself
  (:func:`repro.utils.rng.derive_seed`), never from worker identity or
  submission order;
* cold-store and warm-store runs yield bit-identical payloads — both
  paths round-trip results through ``SimResult.to_dict``/``from_dict``,
  so a freshly simulated result and a replayed one are the same object
  shape bit for bit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimResult
from repro.experiments.store import MemoryStore, cell_fingerprint, cell_key
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class Cell:
    """One experiment-grid cell, hashable and picklable.

    ``policy_kwargs`` is a sorted tuple of ``(name, value)`` pairs so the
    cell stays hashable; build cells through :meth:`make` to get the
    normalisation (upper-cased abbr, sorted kwargs) for free.

    ``engine`` selects the L1D implementation (reference or fast).  It
    is deliberately **excluded** from :meth:`key`, :meth:`meta` and
    :meth:`fingerprint`: the engines are bit-identical, so results
    computed by either resolve the same store entry.
    """

    abbr: str
    scheme: str
    num_sms: int = 4
    scale: float = 1.0
    seed: int = 0
    max_cycles: Optional[int] = None
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    config: Optional[GPUConfig] = None
    engine: str = "reference"

    @classmethod
    def make(
        cls,
        abbr: str,
        scheme: str,
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        max_cycles: Optional[int] = None,
        config: Optional[GPUConfig] = None,
        engine: str = "reference",
        **policy_kwargs,
    ) -> "Cell":
        return cls(
            abbr=abbr.upper(),
            scheme=scheme,
            num_sms=num_sms,
            scale=scale,
            seed=seed,
            max_cycles=max_cycles,
            policy_kwargs=tuple(sorted(policy_kwargs.items())),
            config=config,
            engine=engine,
        )

    def resolved_config(self) -> GPUConfig:
        """Explicit config wins; otherwise the scaled harness machine."""
        return self.config if self.config is not None else GPUConfig().scaled(self.num_sms)

    def key(self) -> str:
        return cell_key(
            self.abbr,
            self.scheme,
            self.resolved_config(),
            scale=self.scale,
            seed=self.seed,
            max_cycles=self.max_cycles,
            policy_kwargs=dict(self.policy_kwargs),
        )

    def meta(self) -> Dict[str, Any]:
        """Human-readable store metadata (what ``repro store ls`` shows)."""
        return {
            "abbr": self.abbr,
            "scheme": self.scheme,
            "num_sms": self.resolved_config().num_sms,
            "scale": self.scale,
            "seed": self.seed,
        }

    def fingerprint(self) -> Dict[str, Any]:
        """The cell's full content-addressed identity (JSON data)."""
        return cell_fingerprint(
            self.abbr,
            self.scheme,
            self.resolved_config(),
            scale=self.scale,
            seed=self.seed,
            max_cycles=self.max_cycles,
            policy_kwargs=dict(self.policy_kwargs),
        )


class CellExecutionError(RuntimeError):
    """One cell's simulation failed inside a worker.

    A bare ``ProcessPoolExecutor`` traceback says *that* a worker died
    but not *which cell* killed it — useless in a 40-cell sweep and
    worse in a service job-failure payload.  This wraps the original
    exception with the failing cell's identity: the human-readable
    summary in the message, and the full content-addressed
    :meth:`Cell.fingerprint` for machine consumers (``repro.serve``
    returns it verbatim in failed-job responses).
    """

    def __init__(self, cell: Cell, key: str, cause: BaseException) -> None:
        self.cell = cell
        self.key = key
        self.cause = cause
        meta = cell.meta()
        ident = ", ".join(f"{k}={v}" for k, v in meta.items())
        super().__init__(
            f"cell {key[:12]} ({ident}) failed: "
            f"{type(cause).__name__}: {cause}"
        )

    def payload(self) -> Dict[str, Any]:
        """Machine-readable failure description (service job payloads)."""
        return {
            "key": self.key,
            "fingerprint": self.cell.fingerprint(),
            "error": f"{type(self.cause).__name__}: {self.cause}",
        }


def simulate_cell(cell: Cell) -> Dict[str, Any]:
    """Run one cell and return its serialized result (worker entry point).

    Workload RNG streams are keyed by ``derive_seed(cell.key(), seed)``
    when the cell carries a nonzero seed, so results depend only on the
    cell's identity — the same cell simulated by any worker, in any
    order, produces the same payload.  Returns a plain dict (not a
    ``SimResult``) so the payload crossing the process boundary is the
    exact on-disk representation.
    """
    # Imported lazily: the runner imports this module, and pool workers
    # re-import repro anyway.
    from repro.experiments.runner import run_workload

    workload_seed = derive_seed(cell.key(), cell.seed) if cell.seed else 0
    result = run_workload(
        cell.abbr,
        cell.scheme,
        cell.resolved_config(),
        scale=cell.scale,
        seed=workload_seed,
        max_cycles=cell.max_cycles,
        engine=cell.engine,
        **dict(cell.policy_kwargs),
    )
    return result.to_dict()


@dataclass
class ExecutorStats:
    """What the executor actually did (vs. resolved from the store)."""

    simulated: int = 0
    store_hits: int = 0
    deduped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "simulated": self.simulated,
            "store_hits": self.store_hits,
            "deduped": self.deduped,
        }


class SweepExecutor:
    """Resolve experiment cells through a store, simulating only misses.

    Parameters
    ----------
    store:
        Any object with the store interface (``get``/``put``/``clear``/
        ``stats``); defaults to a fresh :class:`MemoryStore`, which makes
        a bare executor behave like the old per-process ``lru_cache``.
    jobs:
        Worker processes for miss simulation.  1 = serial in-process
        (no pool, no pickling); >=2 = ``ProcessPoolExecutor``.
    """

    def __init__(self, store=None, jobs: int = 1) -> None:
        self.store = store if store is not None else MemoryStore()
        self.jobs = max(1, int(jobs))
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------

    def run_cell(self, cell: Cell) -> SimResult:
        return self.run_cells([cell])[0]

    def run_cells(self, cells: Iterable[Cell]) -> List[SimResult]:
        """Resolve a batch of cells, preserving input order.

        Duplicate cells (same key) are simulated at most once; store
        misses fan out across the worker pool when ``jobs >= 2``.
        """
        cells = list(cells)
        keys = [cell.key() for cell in cells]
        resolved: Dict[str, SimResult] = {}
        pending: Dict[str, Cell] = {}
        for key, cell in zip(keys, cells):
            if key in resolved or key in pending:
                self.stats.deduped += 1
                continue
            cached = self.store.get(key)
            if cached is not None:
                resolved[key] = cached
                self.stats.store_hits += 1
            else:
                pending[key] = cell
        if pending:
            for key, payload in self._simulate_all(pending):
                result = SimResult.from_dict(payload)
                self.store.put(key, result, meta=pending[key].meta())
                resolved[key] = result
            self.stats.simulated += len(pending)
        return [resolved[key] for key in keys]

    def run_sweep(
        self,
        apps: Sequence[str],
        schemes: Sequence[str],
        num_sms: int = 4,
        scale: float = 1.0,
        seed: int = 0,
        engine: str = "reference",
        config: Optional[GPUConfig] = None,
        **policy_kwargs,
    ) -> Dict[str, Dict[str, SimResult]]:
        """The full app x scheme matrix as ``{app: {scheme: result}}``.

        ``config`` overrides the default scaled harness machine for every
        cell (e.g. a non-blocking L1D variant); it enters each cell's
        store key via :meth:`Cell.resolved_config`.
        """
        apps = [a.upper() for a in apps]
        grid = [
            Cell.make(app, scheme, num_sms=num_sms, scale=scale, seed=seed,
                      config=config, engine=engine, **policy_kwargs)
            for app in apps
            for scheme in schemes
        ]
        flat = iter(self.run_cells(grid))
        return {app: {scheme: next(flat) for scheme in schemes} for app in apps}

    # ------------------------------------------------------------------

    def _simulate_all(
        self, pending: Dict[str, Cell]
    ) -> List[Tuple[str, Dict[str, Any]]]:
        items = list(pending.items())
        if self.jobs == 1 or len(items) == 1:
            out = []
            for key, cell in items:
                try:
                    out.append((key, simulate_cell(cell)))
                except Exception as exc:
                    raise CellExecutionError(cell, key, exc) from exc
            return out
        out = []
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            futures = {
                pool.submit(simulate_cell, cell): key for key, cell in items
            }
            for future in as_completed(futures):
                key = futures[future]
                try:
                    out.append((key, future.result()))
                except Exception as exc:
                    raise CellExecutionError(pending[key], key, exc) from exc
        return out
