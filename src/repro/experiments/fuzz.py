"""Differential workload fuzzer: reference vs fast over adversarial streams.

The repo's bit-identity claim — the packed fast engine and the
reference engine produce byte-identical results, in blocking *and*
non-blocking MSHR mode — is enforced elsewhere on the Table 2 models
and the golden traces.  Those are well-behaved streams.  This module
hunts the claim's edges: seeded adversarial streams (see
:mod:`repro.workloads.adversarial`) are captured once and replayed
through **both** engines across the full ``scheme x mshr-mode`` grid,
comparing the complete serialized result (``SimResult.to_dict`` under
:func:`~repro.experiments.store.canonical_json`) — every counter, every
policy internal.

On a mismatch the fuzzer does not just report the case: it shrinks the
stream to the shortest failing prefix (exponential probe + binary
search over the record count) and emits a machine-readable repro
payload — generator, seed, scale, scheme, mode, prefix length — enough
to replay the divergence in a two-line script.

Everything is deterministic: a fuzz run is identified by
``(generators, base seed, streams, scale, sms)`` and replaying the same
run yields the same verdicts, so CI can pin "200 streams, zero
divergences" as a regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.store import canonical_json
from repro.gpu.config import GPUConfig
from repro.trace.record import capture_records
from repro.trace.replay import replay_records
from repro.workloads import make_workload
from repro.workloads.adversarial import (
    ADVERSARIAL_APPS,
    register_adversarial_workloads,
)

#: The full policy grid (paper Fig. 10 schemes).
FUZZ_SCHEMES = ("baseline", "dlp", "global_protection", "stall_bypass")

#: Both MSHR modes; ``True`` is where the engines earn their keep.
FUZZ_MODES = (False, True)


def fuzz_config(num_sms: int = 2, non_blocking: bool = False) -> GPUConfig:
    """The fuzzer's machine: harness shape with a *pressured* L1D.

    The default 32-entry MSHR never fills under the non-blocking replay
    window (24 outstanding accesses), so resource-stall paths — exactly
    where the engines are most likely to diverge — would go untested.
    Shrinking MSHR/merge/miss-queue below the window forces
    ``MSHR_FULL``/``MERGE_FULL``/``MISS_QUEUE_FULL`` onto every
    saturating stream while leaving geometry (and therefore the
    adversarial generators' set-targeting) untouched.
    """
    config = GPUConfig().scaled(num_sms).with_l1d(
        mshr_entries=8, mshr_merge=4, miss_queue_depth=4,
    )
    if non_blocking:
        config = config.with_l1d(non_blocking=True)
    return config


@dataclass(frozen=True)
class FuzzCase:
    """One seeded adversarial stream (grid of checks hangs off it)."""

    generator: str
    seed: int
    scale: float = 1.0
    num_sms: int = 2

    def describe(self) -> Dict[str, Any]:
        return {
            "generator": self.generator,
            "seed": self.seed,
            "scale": self.scale,
            "num_sms": self.num_sms,
        }


@dataclass
class Divergence:
    """A confirmed reference-vs-fast mismatch, minimized."""

    case: FuzzCase
    scheme: str
    non_blocking: bool
    records: int          # full stream length
    prefix: int           # shortest failing prefix (== records if flat)
    ref_fingerprint: str
    fast_fingerprint: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self.case.describe(),
            "scheme": self.scheme,
            "non_blocking": self.non_blocking,
            "records": self.records,
            "prefix": self.prefix,
            "ref_sha": self.ref_fingerprint,
            "fast_sha": self.fast_fingerprint,
            "repro": (
                f"repro fuzz --generators {self.case.generator} "
                f"--seed {self.case.seed} --streams 1 "
                f"--scale {self.case.scale:g} --sms {self.case.num_sms} "
                f"--policies {self.scheme}"
            ),
        }


@dataclass
class FuzzReport:
    """What a fuzz run did, and what (if anything) it found."""

    cases: int = 0
    checks: int = 0          # (case, scheme, mode) grid points compared
    records: int = 0         # stream records captured (pre-truncation)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cases": self.cases,
            "checks": self.checks,
            "records": self.records,
            "divergences": [d.to_dict() for d in self.divergences],
            "ok": self.ok,
        }


def _fingerprint(result) -> str:
    import hashlib

    return hashlib.sha256(
        canonical_json(result.to_dict()).encode()
    ).hexdigest()


def _diverges(records, config: GPUConfig, scheme: str
              ) -> Optional[Tuple[str, str]]:
    """Replay through both engines; fingerprints iff they disagree."""
    ref = replay_records(iter(records), config, scheme)
    fast = replay_records(iter(records), config, scheme, engine="fast")
    ref_fp, fast_fp = _fingerprint(ref), _fingerprint(fast)
    if ref_fp == fast_fp:
        return None
    return ref_fp, fast_fp


def shrink_failing_prefix(records, config: GPUConfig, scheme: str) -> int:
    """Shortest prefix of ``records`` on which the engines still diverge.

    Exponential probe (1, 2, 4, ...) finds *a* failing length, binary
    search then minimizes it.  Divergence is monotone for any plausible
    engine bug (state drifts and stays drifted), but nothing here relies
    on that: the returned prefix is re-verified failing, and a
    non-monotone bug just yields a longer-than-minimal repro.
    """
    n = len(records)
    hi = 1
    while hi < n and _diverges(records[:hi], config, scheme) is None:
        hi *= 2
    hi = min(hi, n)
    if _diverges(records[:hi], config, scheme) is None:
        return n  # only the full stream fails (non-monotone tail effect)
    lo = hi // 2  # largest probed passing length (0 when hi == 1)
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if _diverges(records[:mid], config, scheme) is None:
            lo = mid
        else:
            hi = mid
    return hi


def run_case(
    case: FuzzCase,
    schemes: Sequence[str] = FUZZ_SCHEMES,
    modes: Sequence[bool] = FUZZ_MODES,
    length: Optional[int] = None,
    report: Optional[FuzzReport] = None,
    shrink: bool = True,
) -> List[Divergence]:
    """Check one stream over the full grid; returns its divergences.

    The stream is captured once (capture is mode-independent) and every
    ``scheme x mode`` point replays the same record list through both
    engines.  ``length`` truncates the stream (faster CI smoke runs).
    """
    register_adversarial_workloads()
    workload = make_workload(case.generator, case.scale, seed=case.seed)
    records = capture_records(workload, fuzz_config(case.num_sms))
    if report is not None:
        report.cases += 1
        report.records += len(records)
    if length is not None:
        records = records[:length]
    found: List[Divergence] = []
    for non_blocking in modes:
        config = fuzz_config(case.num_sms, non_blocking=non_blocking)
        for scheme in schemes:
            if report is not None:
                report.checks += 1
            fps = _diverges(records, config, scheme)
            if fps is None:
                continue
            prefix = (
                shrink_failing_prefix(records, config, scheme)
                if shrink else len(records)
            )
            found.append(Divergence(
                case=case,
                scheme=scheme,
                non_blocking=non_blocking,
                records=len(records),
                prefix=prefix,
                ref_fingerprint=fps[0],
                fast_fingerprint=fps[1],
            ))
    if report is not None:
        report.divergences.extend(found)
    return found


def fuzz_cases(
    streams: int,
    base_seed: int = 0,
    generators: Sequence[str] = ADVERSARIAL_APPS,
    scale: float = 1.0,
    num_sms: int = 2,
) -> List[FuzzCase]:
    """The deterministic case list: generators round-robin, seeds
    ``base_seed .. base_seed + streams - 1``."""
    generators = [g.upper() for g in generators]
    return [
        FuzzCase(
            generator=generators[i % len(generators)],
            seed=base_seed + i,
            scale=scale,
            num_sms=num_sms,
        )
        for i in range(streams)
    ]


def run_fuzz(
    streams: int = 20,
    base_seed: int = 0,
    generators: Sequence[str] = ADVERSARIAL_APPS,
    schemes: Sequence[str] = FUZZ_SCHEMES,
    scale: float = 1.0,
    num_sms: int = 2,
    length: Optional[int] = None,
    shrink: bool = True,
) -> FuzzReport:
    """The full differential fuzz run (CLI + CI entry point)."""
    report = FuzzReport()
    for case in fuzz_cases(streams, base_seed, generators,
                           scale=scale, num_sms=num_sms):
        run_case(case, schemes=schemes, length=length,
                 report=report, shrink=shrink)
    return report
