"""Experiment layer: runners, the functional cache-simulation path and
one driver per paper table/figure (see DESIGN.md's per-experiment index)."""

from repro.experiments import figures
from repro.experiments.cachesim import capacity_sweep, interleaved_streams, profile_reuse
from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    TRAFFIC_SCHEMES,
    build_simulator,
    harness_config,
    run_cell,
    run_sweep,
    run_workload,
)

__all__ = [
    "figures",
    "run_workload",
    "run_cell",
    "run_sweep",
    "build_simulator",
    "harness_config",
    "SCHEME_LABELS",
    "FIG10_SCHEMES",
    "TRAFFIC_SCHEMES",
    "profile_reuse",
    "capacity_sweep",
    "interleaved_streams",
]
