"""Experiment layer: runners, the parallel sweep executor with its
content-addressed result store, the functional cache-simulation path and
one driver per paper table/figure (see DESIGN.md's per-experiment index)."""

from repro.experiments import figures
from repro.experiments.cachesim import capacity_sweep, interleaved_streams, profile_reuse
from repro.experiments.executor import Cell, SweepExecutor
from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    TRAFFIC_SCHEMES,
    build_simulator,
    configure,
    get_executor,
    harness_config,
    run_cell,
    run_sweep,
    run_workload,
    set_executor,
)
from repro.experiments.store import (
    SIM_VERSION,
    MemoryStore,
    ResultStore,
    cell_key,
    open_store,
)

__all__ = [
    "figures",
    "run_workload",
    "run_cell",
    "run_sweep",
    "build_simulator",
    "harness_config",
    "configure",
    "get_executor",
    "set_executor",
    "Cell",
    "SweepExecutor",
    "MemoryStore",
    "ResultStore",
    "cell_key",
    "open_store",
    "SIM_VERSION",
    "SCHEME_LABELS",
    "FIG10_SCHEMES",
    "TRAFFIC_SCHEMES",
    "profile_reuse",
    "capacity_sweep",
    "interleaved_streams",
]
