"""PVR — Page View Rank (Mars MapReduce; Cache Insufficient).

Mars' PageViewRank is a two-phase MapReduce over a web log:

* **map** — scan log records (compulsory stream) and probe the page
  table for each URL.  Page popularity is Zipf-skewed, so a small head
  stays warm while the tail thrashes — the lookups DLP learns to bypass
  (the paper notes DLP captures *fewer* raw hits than baseline on PVR
  yet still wins, Section 6.3.2).
* **reduce** — each warp owns a bucket of pages and aggregates its
  emitted pairs: it streams its emit list while re-reading its private
  accumulator lines once per chunk.  48 resident warps x 4 accumulator
  lines put the per-SM working set past the L1D with re-reference
  distances in the protectable band.

Scaling: paper input 250000 log records; model maps 6912 records over a
320-page table, then reduces 192 four-line buckets.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_LOG = 0xB00        # map: streaming log records
_PC_RANK = 0xB08       # map: page table lookup (Zipf, divergent)
_PC_EMIT = 0xB18       # map: emitted pairs
_PC_RLIST = 0xB20      # reduce: emit-list stream
_PC_ACCUM_LD = 0xB28   # reduce: private accumulator re-reads
_PC_ACCUM_ST = 0xB30   # reduce: accumulator writeback


class PageViewRank(Workload):
    meta = WorkloadMeta(
        name="Page View Rank",
        abbr="PVR",
        suite="Mars",
        paper_type="CI",
        paper_input="250000",
        scaled_input="6912 records, 320-page Zipf table, 2-phase MapReduce",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 16
        self.warps_per_cta = 12
        self.records_per_warp = max(8, int(36 * scale))
        self.table_lines = 320
        self.pages_per_record = 4   # divergent lanes per lookup
        self.reduce_chunks = max(4, int(16 * scale))
        self.accum_lines = 4        # per-warp accumulator bucket

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        log_base = self.addr.region("log", total_warps * self.records_per_warp * LINE)
        table = self.addr.region("rank_table", self.table_lines * LINE)
        emits = self.addr.region("emits", total_warps * self.reduce_chunks * LINE)
        accums = self.addr.region("accums", total_warps * self.accum_lines * LINE)
        rng = self.rng

        def map_trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            my_log = log_base + warp_index * self.records_per_warp * LINE
            pages = rng.zipf_indices(
                self.table_lines,
                self.records_per_warp * self.pages_per_record,
                exponent=1.0,
            )
            for r in range(self.records_per_warp):
                yield load(_PC_LOG, self.coalesced(my_log + r * LINE))
                yield compute(4)  # parse the record
                chunk = pages[r * self.pages_per_record:(r + 1) * self.pages_per_record]
                addrs = table + np.repeat(chunk, 8)[:32] * LINE
                yield load(_PC_RANK, addrs)
                yield compute(3)
                if r % 4 == 3:
                    yield store(_PC_EMIT, self.coalesced(emits + warp_index * LINE))
                yield compute(2)

        def reduce_trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            my_emits = emits + warp_index * self.reduce_chunks * LINE
            my_accum = accums + warp_index * self.accum_lines * LINE
            for chunk in range(self.reduce_chunks):
                yield load(_PC_RLIST, self.coalesced(my_emits + chunk * LINE))
                yield compute(2)
                for a in range(self.accum_lines):
                    # private bucket lines re-read once per emit chunk
                    yield load(_PC_ACCUM_LD, self.coalesced(my_accum + a * LINE))
                    yield compute(2)
                yield compute(2)
            yield store(_PC_ACCUM_ST, self.coalesced(my_accum))

        return [
            Kernel("pvr_map", self.num_ctas, self.warps_per_cta, map_trace),
            Kernel("pvr_reduce", self.num_ctas, self.warps_per_cta, reduce_trace),
        ]
