"""MM — Matrix Multiplication (Mars; Cache Insufficient).

Mars' MapReduce matrix multiply is the *naive* (untiled) kernel: thread
(i, j) accumulates ``sum_k A[i,k] * B[k,j]`` straight from global
memory.  A warp covers 32 consecutive j for a fixed i, so per k-step it
issues one broadcast A element (whose line serves 32 consecutive k —
reuse at distance 1~4) and one coalesced B row segment (re-referenced by
every other i-warp sweeping the same k — distances spread across the
5~8, 9~64 and >65 ranges as warps drift apart).  The result is the
across-all-ranges RDD the paper reports for MM in Fig. 3
(19.5/35.8/33.2/11.5 %), and two PCs with very different profiles —
fertile ground for per-instruction PDs.

Scaling: paper input 256x256; model multiplies 64x64 x 64x64 in
j-blocks of 32.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_A = 0xE00   # A[i,k] broadcast (short intra-warp reuse)
_PC_B = 0xE08   # B[k, j..j+31] (cyclic cross-warp reuse)
_PC_C = 0xE10


class MatMul(Workload):
    meta = WorkloadMeta(
        name="Matrix Multiplication",
        abbr="MM",
        suite="Mars",
        paper_type="CI",
        paper_input="256x256",
        scaled_input="128x128 naive multiply, warp-per-32-columns",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.n = max(32, int(128 * scale))     # square matrix dimension
        self.warps_per_cta = 8

    def build_kernels(self) -> List[Kernel]:
        n = self.n
        j_blocks = n // 32
        row_bytes = n * 4
        a = self.addr.region("A", n * row_bytes)
        b = self.addr.region("B", n * row_bytes)
        c = self.addr.region("C", n * row_bytes)
        num_warps = n * j_blocks           # one warp per (i, j-block)
        num_ctas = max(1, num_warps // self.warps_per_cta)

        def trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            i, jb = divmod(warp_index, j_blocks)
            # each warp starts its k loop at a different point (the sum
            # is order-independent); this models the drift GTO scheduling
            # induces between warps and spreads B-row reuse distances
            # across the ranges, as Fig. 3 reports for MM
            k0 = (warp_index * 37) % n
            for kk in range(n):
                k = (k0 + kk) % n
                if kk % 32 == 0:
                    # A[i, k..k+31] line: consumed over the next 32 steps
                    yield load(_PC_A, self.broadcast(a + i * row_bytes + k * 4))
                yield load(_PC_B, self.coalesced(b + k * row_bytes + jb * 32 * 4))
                yield compute(2)  # FMA + loop bookkeeping
            yield compute(4)
            yield store(_PC_C, self.coalesced(c + i * row_bytes + jb * 32 * 4))

        return [Kernel("mm_naive", num_ctas, self.warps_per_cta, trace)]
