"""SRAD — Speckle Reducing Anisotropic Diffusion (Rodinia; CS).

An image-diffusion stencil over a 2-D grid without shared-memory
tiling: for every pixel row the kernel reads the row itself plus its
north/south neighbours and the diffusion-coefficient row.  Neighbour
rows are the centre rows of adjacent warps, so they are re-referenced at
short distances and the baseline hit rate is comparatively *high* —
which is precisely why Stall-Bypass hurts SRAD in the paper (it bypasses
accesses that would have hit, Section 6.1.1: -11 % IPC).

Scaling: paper input 512x512; model runs 2 diffusion iterations over a
96-row x 8-line image strip.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_CENTER = 0x600
_PC_NORTH = 0x608
_PC_SOUTH = 0x610
_PC_COEFF = 0x618
_PC_STORE = 0x620


class Srad(Workload):
    meta = WorkloadMeta(
        name="Speckle Reducing Anisotropic Diffusion",
        abbr="SRAD",
        suite="Rodinia",
        paper_type="CS",
        paper_input="512x512",
        scaled_input="96x8-line strip, 2 diffusion iterations",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.rows = 96
        self.lines_per_row = 8
        self.iterations = max(1, int(2 * scale))
        self.warps_per_cta = 8
        self.num_ctas = self.rows // self.warps_per_cta

    def build_kernels(self) -> List[Kernel]:
        row_bytes = self.lines_per_row * LINE
        image = self.addr.region("image", self.rows * row_bytes)
        coeff = self.addr.region("diff_coeff", self.rows * row_bytes)

        def make_trace(iteration: int):
            def trace(cta: int, w: int):
                row = cta * self.warps_per_cta + w
                my_row = image + row * row_bytes
                for seg in range(self.lines_per_row):
                    off = seg * LINE
                    yield load(_PC_CENTER, self.coalesced(my_row + off))
                    if row > 0:
                        yield load(_PC_NORTH, self.coalesced(my_row - row_bytes + off))
                    if row < self.rows - 1:
                        yield load(_PC_SOUTH, self.coalesced(my_row + row_bytes + off))
                    yield load(_PC_COEFF, self.coalesced(coeff + row * row_bytes + off))
                    # divergence/gradient computation per pixel
                    yield compute(16)
                    yield store(_PC_STORE, self.coalesced(my_row + off))
                    yield compute(6)

            return trace

        return [
            Kernel(f"srad_iter{i}", self.num_ctas, self.warps_per_cta, make_trace(i))
            for i in range(self.iterations)
        ]
