"""STEN — 3-D Stencil (Parboil; Cache Sufficient).

Parboil's 7-point 3-D Jacobi stencil sweeps the volume plane by plane.
The kernel reads each plane when it first enters the stencil window
(as the z+1 plane) and the update pass touches it again after the window
has moved past — by then an entire plane's worth of other accesses has
gone through each cache set, so the observed reuse distances are long
(Fig. 3: STEN is dominated by the top ranges).  The model reproduces
that with a read sweep followed by an update re-read sweep per warp.

Scaling: paper input 512x512x64; model uses a 64x64 plane over 40
z-steps.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_FRONT = 0x300    # stencil window advance: first read of plane z+1
_PC_UPDATE = 0x308   # update pass: re-read after the full sweep
_PC_STORE = 0x318


class Stencil3D(Workload):
    meta = WorkloadMeta(
        name="3-D Stencil Operation",
        abbr="STEN",
        suite="Parboil",
        paper_type="CS",
        paper_input="512x512x64",
        scaled_input="64x64 plane, 40 z-steps, read + update sweeps",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.rows = 64               # y extent
        self.row_lines = 2           # 64 floats per row
        self.z_steps = max(4, int(40 * scale))
        self.warps_per_cta = 8       # each warp owns one row of the plane
        self.num_ctas = self.rows // self.warps_per_cta * 2  # x-split in two

    def build_kernels(self) -> List[Kernel]:
        plane_bytes = self.rows * self.row_lines * LINE * 2  # both x halves
        vol_base = self.addr.region("volume", plane_bytes * (self.z_steps + 2))
        out_base = self.addr.region("out", plane_bytes * self.z_steps)
        row_bytes = self.row_lines * LINE

        def trace(cta: int, w: int):
            half = cta % 2
            row = (cta // 2) * self.warps_per_cta + w
            x_off = half * self.rows * row_bytes
            my_row_off = x_off + row * row_bytes
            # sweep 1: the stencil window marches in +z, pulling each new
            # plane's row once (register/shared memory carry the window)
            for z in range(self.z_steps):
                plane = vol_base + (z + 1) * plane_bytes
                for seg in range(self.row_lines):
                    yield load(_PC_FRONT, self.coalesced(plane + my_row_off + seg * LINE))
                    yield compute(14)
            yield compute(20)
            # sweep 2: the update pass re-reads each plane's row a full
            # sweep later and writes the result
            for z in range(self.z_steps):
                plane = vol_base + (z + 1) * plane_bytes
                for seg in range(self.row_lines):
                    yield load(_PC_UPDATE, self.coalesced(plane + my_row_off + seg * LINE))
                    yield compute(10)
                out_row = out_base + z * plane_bytes + my_row_off
                yield store(_PC_STORE, self.coalesced(out_row))
                yield compute(6)

        return [Kernel("sten_sweeps", self.num_ctas, self.warps_per_cta, trace)]
