"""HS — Hotspot (Rodinia; Cache Sufficient).

Rodinia's hotspot computes a thermal simulation over a 2-D grid.  The
CUDA kernel tiles the grid into CTAs and runs several *pyramid*
iterations per launch: the first iteration pulls the tile's temperature
and power rows in from global memory, and later iterations re-read the
shrinking tile borders while the interior lives in shared memory.  The
model reproduces that as two passes over each warp's rows: the second
pass re-references lines a full tile-pass later, so observed reuse
distances sit in the middle/long ranges, while halo rows shared with the
neighbouring CTA are usually resident on another SM and rarely produce
observable reuse.  The pyramid arithmetic dominates, keeping the
memory-access ratio far below 1 % — IPC is insensitive to the L1D
(Fig. 5).

Scaling: paper input 512x512; model uses 48 CTAs x 16-row tiles with 2
pyramid iterations.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_TEMP_LOAD = 0x200
_PC_POWER_LOAD = 0x208
_PC_BORDER_RELOAD = 0x210  # pyramid pass 2: border rows re-read
_PC_HALO_LOAD = 0x228
_PC_TEMP_STORE = 0x218


class Hotspot(Workload):
    meta = WorkloadMeta(
        name="Hotspot",
        abbr="HS",
        suite="Rodinia",
        paper_type="CS",
        paper_input="512x512",
        scaled_input="48 CTAs x 16-row tiles, 2 pyramid iterations",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = max(8, int(48 * scale))
        self.warps_per_cta = 8       # one warp per pair of tile rows
        self.rows_per_warp = 2
        self.pyramid_iters = 2
        self.row_lines = 2           # 64 floats per tile row

    def build_kernels(self) -> List[Kernel]:
        tile_rows = self.warps_per_cta * self.rows_per_warp
        tile_bytes = tile_rows * self.row_lines * LINE
        temp_base = self.addr.region("temperature", self.num_ctas * tile_bytes)
        power_base = self.addr.region("power", self.num_ctas * tile_bytes)
        out_base = self.addr.region("temp_out", self.num_ctas * tile_bytes)
        row_bytes = self.row_lines * LINE

        def trace(cta: int, w: int):
            tile_temp = temp_base + cta * tile_bytes
            tile_power = power_base + cta * tile_bytes
            tile_out = out_base + cta * tile_bytes
            rows = [w * self.rows_per_warp + r for r in range(self.rows_per_warp)]
            # pyramid pass 1: pull the tile in
            for row in rows:
                for seg in range(self.row_lines):
                    off = row * row_bytes + seg * LINE
                    yield load(_PC_TEMP_LOAD, self.coalesced(tile_temp + off))
                    yield load(_PC_POWER_LOAD, self.coalesced(tile_power + off))
                    yield compute(12)
            # halo row below the tile (owned by cta+1, usually another SM)
            if w == self.warps_per_cta - 1 and cta + 1 < self.num_ctas:
                yield load(_PC_HALO_LOAD, self.coalesced(temp_base + (cta + 1) * tile_bytes))
            yield compute(40)
            # pyramid pass 2: border rows come back from global while the
            # interior lives in shared memory
            for it in range(self.pyramid_iters - 1):
                for row in rows:
                    off = row * row_bytes
                    yield load(_PC_BORDER_RELOAD, self.coalesced(tile_temp + off))
                    yield compute(24)
            for row in rows:
                for seg in range(self.row_lines):
                    off = row * row_bytes + seg * LINE
                    yield store(_PC_TEMP_STORE, self.coalesced(tile_out + off))
                    yield compute(10)

        return [Kernel("hs_stencil", self.num_ctas, self.warps_per_cta, trace)]
