"""BT — B+tree (Rodinia; Cache Sufficient).

Batched key lookups over a B+tree: every query walks root -> internal ->
leaf.  The root line is touched by every query (very short reuse), the
internal level (16 nodes) is warm, and the leaves (512 nodes, selected
by key) mostly miss.  The resulting hit rate is relatively high, and the
hits carry the performance — the paper shows Stall-Bypass losing 12 %
IPC on BT by bypassing accesses to the warm upper levels, while
protection schemes retain them (Section 6.1.1, Fig. 12).

Scaling: paper input 6000x3000 (bundled tree/query files); the model
uses a 3-level tree and 48 queries per warp.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_KEYS = 0x900      # query key stream (coalesced)
_PC_ROOT = 0x908      # root node (hot)
_PC_INTERNAL = 0x910  # internal level (warm)
_PC_LEAF = 0x918      # leaf nodes (cold, key-dependent)
_PC_RESULT = 0x920


class BTree(Workload):
    meta = WorkloadMeta(
        name="B+tree",
        abbr="BT",
        suite="Rodinia",
        paper_type="CS",
        paper_input="6000x3000",
        scaled_input="3-level tree (1/16/512 nodes), 48 queries/warp",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 16
        self.warps_per_cta = 6
        self.queries_per_warp = max(8, int(48 * scale))
        self.internal_nodes = 16
        self.leaf_nodes = 512

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        keys = self.addr.region("keys", total_warps * self.queries_per_warp * 4 * 2)
        root = self.addr.region("root", LINE)
        internal = self.addr.region("internal", self.internal_nodes * LINE)
        leaves = self.addr.region("leaves", self.leaf_nodes * LINE)
        results = self.addr.region("results", total_warps * self.queries_per_warp * 8)
        rng = self.rng

        def trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            # pre-draw this warp's tree paths (key-dependent)
            internal_ids = rng.integers(0, self.internal_nodes, self.queries_per_warp)
            leaf_ids = rng.integers(0, self.leaf_nodes, self.queries_per_warp)
            key_base = keys + warp_index * self.queries_per_warp * 8
            for q in range(self.queries_per_warp):
                if q % 16 == 0:
                    yield load(_PC_KEYS, self.coalesced(key_base + (q // 16) * LINE))
                yield load(_PC_ROOT, self.broadcast(root))
                yield compute(9)  # binary search within the node
                yield load(
                    _PC_INTERNAL,
                    self.broadcast(internal + int(internal_ids[q]) * LINE),
                )
                yield compute(9)
                yield load(_PC_LEAF, self.broadcast(leaves + int(leaf_ids[q]) * LINE))
                yield compute(9)
                if q % 16 == 15:
                    yield store(
                        _PC_RESULT,
                        self.coalesced(results + warp_index * self.queries_per_warp * 8),
                    )
                yield compute(6)

        return [Kernel("bt_lookup", self.num_ctas, self.warps_per_cta, trace)]
