"""SR2K — Symmetric Rank-2k update (Polybench; Cache Insufficient).

``C = alpha*(A*B^T + B*A^T) + beta*C``: like SYRK but sweeping *two*
matrices, doubling the cyclic working set (A rows + B rows).  The
per-SM footprint lands around 3x the 16 KB L1D — far enough past
capacity that even the 32 KB cache cannot hold it, which is why the
paper's Fig. 10 shows Global-Protection and DLP *beating* the 32 KB
configuration on SR2K: protected lines retain locality for longer than
8-way LRU can.

Scaling: paper input 256x256; model uses 96 rows x 2 lines per matrix.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_A_OWN = 0x1000
_PC_B_OTHER = 0x1008   # B[j,:] sweep
_PC_B_OWN = 0x1010
_PC_A_OTHER = 0x1018   # A[j,:] sweep
_PC_C_LD = 0x1020
_PC_C_ST = 0x1028


class Syr2k(Workload):
    meta = WorkloadMeta(
        name="Symmetric Rank-2k",
        abbr="SR2K",
        suite="Polybench",
        paper_type="CI",
        paper_input="256x256",
        scaled_input="144-row x 2-line A and B, rank-2k sweep",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.rows = max(32, int(144 * scale))
        self.row_lines = 2
        self.warps_per_cta = 12

    def build_kernels(self) -> List[Kernel]:
        row_bytes = self.row_lines * LINE
        a = self.addr.region("A", self.rows * row_bytes)
        b = self.addr.region("B", self.rows * row_bytes)
        c = self.addr.region("C", self.rows * row_bytes)
        num_ctas = max(1, self.rows // self.warps_per_cta)

        def trace(cta: int, w: int):
            i = (cta * self.warps_per_cta + w) % self.rows
            yield load(_PC_C_LD, self.coalesced(c + i * row_bytes))
            # own rows of A and B: loaded once, register-resident across
            # the sweep (as in the unrolled Polybench kernel)
            for seg in range(self.row_lines):
                yield load(_PC_A_OWN, self.coalesced(a + i * row_bytes + seg * LINE))
                yield load(_PC_B_OWN, self.coalesced(b + i * row_bytes + seg * LINE))
            yield compute(4)
            start = (i * 31) % self.rows
            for jj in range(self.rows):
                j = (start + jj) % self.rows
                for seg in range(self.row_lines):
                    off = seg * LINE
                    yield load(_PC_B_OTHER, self.coalesced(b + j * row_bytes + off))
                    yield compute(2)
                    yield load(_PC_A_OTHER, self.coalesced(a + j * row_bytes + off))
                    yield compute(2)
            yield compute(4)
            yield store(_PC_C_ST, self.coalesced(c + i * row_bytes))

        return [Kernel("syr2k", num_ctas, self.warps_per_cta, trace)]
