"""STR — String Match (Mars; Cache Insufficient).

Mars' StringMatch greps a keyword set over a text corpus.  The GPU
kernel gives each warp a text block and loops over keyword chunks,
re-scanning the block once per chunk: the warp's private text lines are
re-referenced once per keyword chunk, but with 48 resident warps the
per-SM text footprint (~192 lines) exceeds the L1D, so the baseline
evicts the block between scans while the VTA sees every lost reuse —
the protectable pattern.  Keyword loads probe a Zipf-skewed dictionary
with lane divergence, making STR the most request-dense benchmark (the
rightmost bar of the paper's Fig. 6).

Scaling: paper input 354984 (bundled text); model scans 4-line text
blocks against 12 chunks of a 2048-word dictionary.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_TEXT = 0x1200    # private text block, re-scanned per keyword chunk
_PC_DICT = 0x1208    # keyword dictionary probes (Zipf, divergent)
_PC_MATCH = 0x1210


class StringMatch(Workload):
    meta = WorkloadMeta(
        name="String Match",
        abbr="STR",
        suite="Mars",
        paper_type="CI",
        paper_input="354984",
        scaled_input="4-line text blocks x 12 keyword chunks, 2048 words",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 16
        self.warps_per_cta = 12
        self.text_lines = 3              # private block per warp
        self.keyword_chunks = max(4, int(16 * scale))
        self.dict_words = 4096           # 32 B per word -> 512 lines

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        text = self.addr.region("text", total_warps * self.text_lines * LINE)
        dict_base = self.addr.region("dictionary", self.dict_words * 32)
        matches = self.addr.region("matches", total_warps * 64)
        rng = self.rng

        def trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            my_text = text + warp_index * self.text_lines * LINE
            words = rng.zipf_indices(
                self.dict_words,
                self.keyword_chunks * self.text_lines * 8,
                exponent=0.75,
            )
            idx = 0
            for k in range(self.keyword_chunks):
                for t in range(self.text_lines):
                    # re-scan the private text block for this chunk's words
                    yield load(_PC_TEXT, self.coalesced(my_text + t * LINE))
                    yield compute(2)  # tokenise / compare window
                    chunk = words[idx:idx + 8]
                    idx += 8
                    addrs = dict_base + np.repeat(chunk, 4)[:32] * 32
                    yield load(_PC_DICT, addrs)
                    yield compute(2)  # strcmp-ish
                yield compute(2)
                if k % 4 == 3:
                    yield store(_PC_MATCH, self.coalesced(matches + warp_index * 64, elem_bytes=2))

        return [Kernel("str_match", self.num_ctas, self.warps_per_cta, trace)]
