"""GEMM — Matrix Multiply-add (Polybench; Cache Sufficient).

Shared-memory-tiled ``C = alpha*A*B + beta*C``: each CTA owns a C tile
and loops over k-tiles, loading an A tile and a B tile per step and then
grinding through the in-tile FMA loop.  A-tile rows are shared between
CTAs in the same tile row and B tiles between CTAs in the same tile
column, producing moderate cross-CTA reuse; the FMA loop dominates, so
the memory-access ratio is well under 1 %.

The paper notes DLP can slightly *over-protect* GEMM (3 % loss vs
Global-Protection, Section 6.1.1) — the tiled loads from a single PC
have mixed distances.

Scaling: paper input 512x512x512; model runs a 8x8 tile grid with 8
k-tiles of 4 lines each.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_A = 0x800
_PC_B = 0x808
_PC_C_LOAD = 0x810
_PC_C_STORE = 0x818


class Gemm(Workload):
    meta = WorkloadMeta(
        name="Matrix Multiply-add",
        abbr="GEMM",
        suite="Polybench",
        paper_type="CS",
        paper_input="512X512X512",
        scaled_input="8x8 CTA tile grid, 8 k-tiles x 4 lines",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.tile_grid = 8
        self.k_tiles = max(2, int(8 * scale))
        self.tile_lines = 4
        self.warps_per_cta = 4

    def build_kernels(self) -> List[Kernel]:
        g, kt, tl = self.tile_grid, self.k_tiles, self.tile_lines
        a = self.addr.region("A", g * kt * tl * LINE)
        b = self.addr.region("B", kt * g * tl * LINE)
        c = self.addr.region("C", g * g * tl * LINE)

        def trace(cta: int, w: int):
            ti, tj = divmod(cta, g)
            # beta*C read
            c_tile = c + (ti * g + tj) * tl * LINE
            yield load(_PC_C_LOAD, self.coalesced(c_tile + (w % tl) * LINE))
            yield compute(4)
            for k in range(kt):
                a_tile = a + (ti * kt + k) * tl * LINE
                b_tile = b + (k * g + tj) * tl * LINE
                # cooperative tile loads: each warp fetches one line of
                # each tile (the CUDA kernel's shared-memory staging)
                yield load(_PC_A, self.coalesced(a_tile + (w % tl) * LINE))
                yield load(_PC_B, self.coalesced(b_tile + (w % tl) * LINE))
                # in-tile FMA loop over the tile's k extent
                yield compute(48)
            yield compute(8)
            yield store(_PC_C_STORE, self.coalesced(c_tile + (w % tl) * LINE))

        return [Kernel("gemm_tiled", g * g, self.warps_per_cta, trace)]
