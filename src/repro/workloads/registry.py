"""Workload registry: Table 2 of the paper.

Maps the paper's benchmark abbreviations to workload classes and
preserves the paper's ordering, suites and CS/CI classification so the
figure drivers can reproduce the exact x-axes.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.backprop import BackPropagation
from repro.workloads.base import Workload
from repro.workloads.bfs import Bfs
from repro.workloads.btree import BTree
from repro.workloads.cfd import Cfd
from repro.workloads.convolution import SeparableConvolution
from repro.workloads.gemm import Gemm
from repro.workloads.histogram import Histogram
from repro.workloads.hotspot import Hotspot
from repro.workloads.kmeans import Kmeans
from repro.workloads.matmul import MatMul
from repro.workloads.needleman import NeedlemanWunsch
from repro.workloads.pagerank import PageViewRank
from repro.workloads.simscore import SimilarityScore
from repro.workloads.srad import Srad
from repro.workloads.stencil3d import Stencil3D
from repro.workloads.stringmatch import StringMatch
from repro.workloads.syr2k import Syr2k
from repro.workloads.syrk import Syrk

#: Paper ordering (Figs. 3-6 x-axis): CS block first, then CI block.
WORKLOADS: Dict[str, Type[Workload]] = {
    "HG": Histogram,
    "HS": Hotspot,
    "STEN": Stencil3D,
    "SC": SeparableConvolution,
    "BP": BackPropagation,
    "SRAD": Srad,
    "NW": NeedlemanWunsch,
    "GEMM": Gemm,
    "BT": BTree,
    "CFD": Cfd,
    "PVR": PageViewRank,
    "SS": SimilarityScore,
    "BFS": Bfs,
    "MM": MatMul,
    "SRK": Syrk,
    "SR2K": Syr2k,
    "KM": Kmeans,
    "STR": StringMatch,
}

CS_APPS: List[str] = [a for a, w in WORKLOADS.items() if w.meta.paper_type == "CS"]
CI_APPS: List[str] = [a for a, w in WORKLOADS.items() if w.meta.paper_type == "CI"]
ALL_APPS: List[str] = list(WORKLOADS)

#: The immutable Table 2 set; trace-backed registrations come and go.
_TABLE2_APPS = frozenset(WORKLOADS)


def make_workload(abbr: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Instantiate a Table 2 benchmark model by its abbreviation.

    ``seed`` re-keys the workload's deterministic RNG stream (0 keeps the
    default stream every figure uses); the sweep executor threads a
    per-cell seed through here so seeded cells stay reproducible.
    """
    key = abbr.upper()
    try:
        cls = WORKLOADS[key]
    except KeyError:
        raise ValueError(
            f"unknown workload {abbr!r}; expected one of {ALL_APPS}"
        ) from None
    workload = cls(scale=scale)
    if seed:
        workload.reseed(seed)
    return workload


def register_trace_workload(abbr: str, path, name: str | None = None) -> Type[Workload]:
    """Register an imported trace as a first-class workload.

    After ``register_trace_workload("XT", "foreign.rptr")``,
    ``make_workload("XT")`` returns a trace-backed workload usable by
    every registry-driven path (runs, sweeps, reuse profiling).  The
    abbreviation must not collide with a Table 2 app.  Returns the
    registered class; remove it with :func:`unregister_workload`.
    """
    from repro.trace.adapters import make_trace_workload_class

    key = abbr.upper()
    if key in WORKLOADS:
        raise ValueError(
            f"abbreviation {key!r} is already registered"
            + (" (Table 2 app)" if key in _TABLE2_APPS else "")
        )
    cls = make_trace_workload_class(key, path, name=name)
    WORKLOADS[key] = cls
    ALL_APPS.append(key)
    return cls


def unregister_workload(abbr: str) -> None:
    """Remove a previously registered trace workload (Table 2 apps are
    permanent)."""
    key = abbr.upper()
    if key in _TABLE2_APPS:
        raise ValueError(f"{key} is a Table 2 application and cannot be removed")
    if WORKLOADS.pop(key, None) is not None:
        ALL_APPS.remove(key)


def table2_rows():
    """(name, abbr, suite, type, paper input, scaled input) rows."""
    return [
        (
            cls.meta.name,
            abbr,
            cls.meta.suite,
            cls.meta.paper_type,
            cls.meta.paper_input,
            cls.meta.scaled_input,
        )
        for abbr, cls in WORKLOADS.items()
    ]
