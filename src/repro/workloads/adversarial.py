"""Adversarial stream generators for the differential fuzzer.

The Table 2 models reproduce *benchmark* behaviour; these four
generators instead aim at the corners of the cache model itself — the
places where the reference and fast engines, or the blocking and
non-blocking MSHR paths, could plausibly disagree:

* :class:`SetThrash` (``ATH``) — every access lands in a handful of
  cache sets with a working set wider than the associativity, so lines
  are constantly RESERVED/evicted and protection policies see maximal
  ``NO_RESERVABLE_LINE`` pressure.
* :class:`PointerChase` (``APC``) — a seeded random walk over a line
  pool much larger than the cache.  Nearly every access misses, many
  warps walk concurrently, and revisits land on still-pending lines:
  the MSHR saturation + secondary-miss coalescing stressor.
* :class:`PhaseShift` (``APH``) — three kernels with contradictory
  phases (streaming, tight reuse, random) so per-PC protection state
  trained in one phase is wrong for the next; exercises policy resets
  at kernel boundaries.
* :class:`BypassStorm` (``ABS``) — hammers one set group far past
  associativity while re-touching recent lines, so bypass-eligible
  misses and cached requests interleave on the *same* pending blocks
  (the ``is_bypass`` MSHR-merge edge).

All streams derive from the workload's :class:`DeterministicRng`
(keyed by abbreviation, salted by ``seed`` via :meth:`Workload.reseed`),
so a fuzz case is fully identified by ``(abbr, scale, seed)`` — the
same identity every registry-driven path (trace keys, store keys,
``repro fuzz`` repro files) already uses.

The generators are deliberately **not** in the Table 2 registry by
default — figures and sweeps over ``ALL_APPS`` must not change — call
:func:`register_adversarial_workloads` to add them (idempotent) and
:func:`unregister_adversarial_workloads` to remove them again.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads import registry
from repro.workloads.base import LINE, Workload, WorkloadMeta

#: Registration order is the fuzzer's default generator order.
ADVERSARIAL_APPS = ("ATH", "APC", "APH", "ABS")

# Synthetic PCs, disjoint from every Table 2 model (those live in the
# 0x100-0xF00 range); distinct PCs per generator keep per-instruction
# policy state (PDPT, VTA) from aliasing across phases.
_PC = 0xA000


def _pc(n: int) -> int:
    return _PC + 8 * n


class _AdversarialWorkload(Workload):
    """Shared shape: one warp per (cta, warp) walking a seeded stream."""

    #: Sets in the 16 KB harness L1D (32 sets x 128 B lines); the
    #: same-set stride below is what makes the thrash generators land
    #: where they aim under the linear indexer.
    SETS = 32
    SET_STRIDE = SETS * LINE


class SetThrash(_AdversarialWorkload):
    """ATH: working set wider than the associativity, folded into a few
    sets.  Each warp cycles a private permutation of ``lines`` blocks
    that all share a set index, with a one-line phase drift per lap so
    reuse distances never settle."""

    meta = WorkloadMeta(
        name="Adversarial Set Thrash",
        abbr="ATH",
        suite="adversarial",
        paper_type="ADV",
        paper_input="-",
        scaled_input="12-line conflict set over 2 cache sets, 3 laps",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.warps_per_cta = 4
        self.num_ctas = max(1, int(2 * scale))
        self.lines = max(6, int(12 * scale))   # > assoc (4) by design
        self.laps = 3

    def build_kernels(self) -> List[Kernel]:
        base = self.addr.region("thrash", self.lines * self.SET_STRIDE * 2)
        order = [self.rng.permutation(self.lines)
                 for _ in range(self.num_ctas * self.warps_per_cta)]

        def trace(cta: int, w: int):
            widx = cta * self.warps_per_cta + w
            perm = order[widx]
            target_set = widx % 2            # two sets carry everything
            for lap in range(self.laps):
                for i in perm:
                    block = (int(i) + lap) % self.lines
                    addr = base + target_set * LINE + block * self.SET_STRIDE
                    yield load(_pc(0), self.broadcast(addr))
                    yield compute(1)
            yield store(_pc(1), self.broadcast(base + target_set * LINE))

        return [Kernel("ath_thrash", self.num_ctas, self.warps_per_cta, trace)]


class PointerChase(_AdversarialWorkload):
    """APC: MSHR saturator.  Every warp walks a seeded random chain over
    a pool ~16x the cache, so almost every access is a miss and several
    warps are mid-chain at once; one revisit per hop window lands on a
    likely-pending line to force secondary-miss merges."""

    meta = WorkloadMeta(
        name="Adversarial Pointer Chase",
        abbr="APC",
        suite="adversarial",
        paper_type="ADV",
        paper_input="-",
        scaled_input="2048-line pool, 96-hop chains, 1-in-8 revisit",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.warps_per_cta = 4
        self.num_ctas = max(1, int(2 * scale))
        self.pool_lines = max(256, int(2048 * scale))
        self.hops = max(16, int(96 * scale))

    def build_kernels(self) -> List[Kernel]:
        base = self.addr.region("chase", self.pool_lines * LINE)
        num_warps = self.num_ctas * self.warps_per_cta
        hops = self.rng.integers(0, self.pool_lines,
                                 size=(num_warps, self.hops))

        def trace(cta: int, w: int):
            widx = cta * self.warps_per_cta + w
            chain = hops[widx]
            for h in range(self.hops):
                line = int(chain[h])
                yield load(_pc(2), self.broadcast(base + line * LINE))
                if h % 8 == 7 and h:
                    # revisit a line another hop just fetched: in
                    # non-blocking mode this is the secondary-miss /
                    # word-coalescing path, in blocking mode a waiter
                    # merge
                    prev = int(chain[h - 1])
                    yield load(_pc(3), self.broadcast(base + prev * LINE))
            yield compute(2)

        return [Kernel("apc_chase", self.num_ctas, self.warps_per_cta, trace)]


class PhaseShift(_AdversarialWorkload):
    """APH: three kernels whose access phases contradict each other —
    stream (never reuse), spin (always reuse), scatter (random) — so any
    protection state carried across a kernel boundary mispredicts."""

    meta = WorkloadMeta(
        name="Adversarial Phase Shift",
        abbr="APH",
        suite="adversarial",
        paper_type="ADV",
        paper_input="-",
        scaled_input="stream/spin/scatter kernel triple",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.warps_per_cta = 4
        self.num_ctas = max(1, int(2 * scale))
        self.span_lines = max(64, int(512 * scale))
        self.steps = max(16, int(64 * scale))

    def build_kernels(self) -> List[Kernel]:
        stream = self.addr.region("stream", self.span_lines * LINE)
        spin = self.addr.region("spin", 8 * LINE)
        scatter = self.addr.region("scatter", self.span_lines * LINE)
        num_warps = self.num_ctas * self.warps_per_cta
        picks = self.rng.integers(0, self.span_lines,
                                  size=(num_warps, self.steps))

        def stream_trace(cta: int, w: int):
            widx = cta * self.warps_per_cta + w
            for s in range(self.steps):
                line = (widx * self.steps + s) % self.span_lines
                yield load(_pc(4), self.coalesced(stream + line * LINE))
                yield compute(2)

        def spin_trace(cta: int, w: int):
            widx = cta * self.warps_per_cta + w
            for s in range(self.steps):
                yield load(_pc(5), self.broadcast(spin + (widx % 8) * LINE))
                yield compute(1)

        def scatter_trace(cta: int, w: int):
            widx = cta * self.warps_per_cta + w
            for s in range(self.steps):
                line = int(picks[widx][s])
                yield load(_pc(6), self.broadcast(scatter + line * LINE))
                if s % 4 == 3:
                    yield store(_pc(7), self.broadcast(scatter + line * LINE))
                yield compute(1)

        make = lambda name, fn: Kernel(name, self.num_ctas,  # noqa: E731
                                       self.warps_per_cta, fn)
        return [make("aph_stream", stream_trace),
                make("aph_spin", spin_trace),
                make("aph_scatter", scatter_trace)]


class BypassStorm(_AdversarialWorkload):
    """ABS: one set group hammered far past associativity while each
    warp re-touches its last few lines, so bypass-eligible misses and
    cached requests interleave on the same pending blocks."""

    meta = WorkloadMeta(
        name="Adversarial Bypass Storm",
        abbr="ABS",
        suite="adversarial",
        paper_type="ADV",
        paper_input="-",
        scaled_input="24-line burst into one set, depth-3 re-touch",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.warps_per_cta = 4
        self.num_ctas = max(1, int(2 * scale))
        self.burst = max(8, int(24 * scale))
        self.rounds = 2

    def build_kernels(self) -> List[Kernel]:
        base = self.addr.region("storm", self.burst * self.SET_STRIDE * 2)
        num_warps = self.num_ctas * self.warps_per_cta
        jitter = self.rng.integers(0, self.burst,
                                   size=(num_warps, self.rounds * self.burst))

        def trace(cta: int, w: int):
            widx = cta * self.warps_per_cta + w
            step = 0
            for r in range(self.rounds):
                for i in range(self.burst):
                    line = (i + int(jitter[widx][step])) % self.burst
                    addr = base + line * self.SET_STRIDE
                    yield load(_pc(8), self.broadcast(addr))
                    if i >= 3:
                        # re-touch a line from 3 bursts back: usually
                        # still pending under MSHR pressure, making
                        # this a cached request against a (possibly
                        # bypassed) outstanding fetch
                        back = (line - 3) % self.burst
                        yield load(_pc(9),
                                   self.broadcast(base + back * self.SET_STRIDE))
                    step += 1
                yield compute(4)

        return [Kernel("abs_storm", self.num_ctas, self.warps_per_cta, trace)]


_CLASSES = {
    "ATH": SetThrash,
    "APC": PointerChase,
    "APH": PhaseShift,
    "ABS": BypassStorm,
}


def register_adversarial_workloads() -> List[str]:
    """Add the adversarial generators to the workload registry.

    Idempotent; returns the abbreviations that are now registered.
    After this, ``make_workload("APC", seed=7)`` and every registry
    consumer (trace record, replay sweeps, the fuzzer) can use them.
    """
    for abbr, cls in _CLASSES.items():
        if abbr not in registry.WORKLOADS:
            registry.WORKLOADS[abbr] = cls
            registry.ALL_APPS.append(abbr)
    return list(_CLASSES)


def unregister_adversarial_workloads() -> None:
    """Remove the adversarial generators again (test hygiene)."""
    for abbr in _CLASSES:
        registry.WORKLOADS.pop(abbr, None)
        if abbr in registry.ALL_APPS:
            registry.ALL_APPS.remove(abbr)
