"""BFS — Breadth-First Search (Rodinia; Cache Insufficient).

Rodinia's BFS launches one kernel per frontier level with one *thread
per node*: each thread checks its node's frontier mask and, if set,
walks the node's CSR adjacency list and relaxes neighbour costs.  A warp
therefore covers 32 consecutive nodes, and its static loads have sharply
different reuse profiles — the paper's Figure 7 plots the per-PC RDDs of
exactly this benchmark to motivate per-instruction protection:

* mask / row-offset reads are coalesced over consecutive node ids:
  adjacent warps share their boundary lines at short distances, and the
  arrays are re-scanned every level (long distances);
* edge-list reads stream through the CSR array with cross-node line
  sharing in the middle ranges;
* visited/cost gathers scatter over the node arrays through neighbour
  ids; graph locality (neighbours within +/-64) turns them into window
  reuse between nearby warps at protectable distances, while long-range
  links land in the long range.

The graph is synthetic: ring locality plus sparse long links, giving
realistic frontier growth.  Frontier sets are precomputed host-side, as
Rodinia's driver effectively does via the mask arrays.

Scaling: paper input 65536 nodes; model uses 4096 nodes, degree ~8.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, WARP, Workload, WorkloadMeta

_PC_MASK = 0xD00        # insn1: frontier-mask scan (per level)
_PC_ROW_LO = 0xD08      # insn2: row_offsets[node]
_PC_ROW_HI = 0xD10      # insn3: row_offsets[node+1]
_PC_EDGES = 0xD18       # insn4: adjacency lists
_PC_VISITED = 0xD20     # insn5: visited[neighbour] gather
_PC_COST_LD = 0xD28     # insn6: cost[neighbour] gather
_PC_COST_ST = 0xD30     # insn7: cost update
_PC_NEWMASK_ST = 0xD38  # insn8: updating-mask store
_PC_VISITED_ST = 0xD40  # insn9: visited update


class Bfs(Workload):
    meta = WorkloadMeta(
        name="Breadth-First Search",
        abbr="BFS",
        suite="Rodinia",
        paper_type="CI",
        paper_input="65536",
        scaled_input="4096 nodes, deg ~8, ring locality + long links",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_nodes = max(1024, int(4096 * scale))
        self.degree = 8
        self.warps_per_cta = 8
        self._graph_built = False

    # -- graph construction -------------------------------------------------

    def _build_graph(self) -> None:
        if self._graph_built:
            return
        n = self.num_nodes
        gen = self.rng.generator
        # local edges: neighbours within +/-64 (renumbered-mesh locality)
        local = (
            np.arange(n)[:, None]
            + gen.integers(-256, 257, size=(n, self.degree - 1))
        ) % n
        # one long-range link per node, concentrated on hub nodes (web/
        # social graphs have skewed in-degree); hub visited/cost lines are
        # re-referenced throughout a level at protectable distances
        longlink = gen.integers(0, max(256, n // 2), size=(n, 1))
        adj = np.concatenate([local, longlink], axis=1).astype(np.int64)
        self.row_offsets = np.arange(0, (n + 1) * self.degree, self.degree)
        self.edges = adj.reshape(-1)
        # host-side BFS to derive per-level frontiers
        level = np.full(n, -1, dtype=np.int64)
        level[0] = 0
        frontier = np.array([0], dtype=np.int64)
        self.frontiers: List[np.ndarray] = []
        depth = 0
        while frontier.size and depth < 12:
            self.frontiers.append(frontier)
            nbrs = self.edges[
                np.concatenate(
                    [np.arange(self.row_offsets[v], self.row_offsets[v + 1]) for v in frontier]
                )
            ]
            fresh = np.unique(nbrs[level[nbrs] < 0])
            level[fresh] = depth + 1
            frontier = fresh
            depth += 1
        self.levels = level
        self._graph_built = True

    # -- kernels ------------------------------------------------------------

    def build_kernels(self) -> List[Kernel]:
        self._build_graph()
        n = self.num_nodes
        mask = self.addr.region("mask", n)           # 1 B per node
        rows = self.addr.region("row_offsets", (n + 1) * 4)
        edges = self.addr.region("edges", self.edges.size * 4)
        visited = self.addr.region("visited", n)
        cost = self.addr.region("cost", n * 4)

        chunks = n // WARP
        num_ctas = max(1, chunks // self.warps_per_cta)

        kernels = []
        for depth, frontier in enumerate(self.frontiers):
            by_chunk: Dict[int, np.ndarray] = dict(zip(*_group_by_chunk(frontier)))
            kernels.append(
                Kernel(
                    f"bfs_level{depth}",
                    num_ctas,
                    self.warps_per_cta,
                    self._make_level_trace(
                        depth, by_chunk, mask, rows, edges, visited, cost
                    ),
                )
            )
        return kernels

    def _make_level_trace(self, depth, by_chunk, mask, rows, edges, visited, cost):
        row_offsets = self.row_offsets
        edge_ids = self.edges

        levels = self.levels

        def trace(cta: int, w: int):
            chunk = cta * self.warps_per_cta + w
            # insn1: each thread checks its node's mask byte (one line
            # covers 128 nodes -> adjacent warps share it)
            yield load(_PC_MASK, self.coalesced(mask + chunk * WARP, elem_bytes=1))
            yield compute(2)
            members = by_chunk.get(chunk)
            if members is None:
                return
            members = members.astype(np.int64)
            # insn2/3: row offsets of the frontier lanes (consecutive node
            # ids -> one or two lines)
            yield load(_PC_ROW_LO, _pad32(rows + members * 4))
            yield load(_PC_ROW_HI, _pad32(rows + members * 4 + 4))
            yield compute(2)
            # per-lane adjacency slices, emitted in groups of 32 edges the
            # way the divergent inner loop serialises
            starts = row_offsets[members]
            all_edges = np.concatenate(
                [np.arange(s, s + self.degree) for s in starts]
            ).astype(np.int64)
            for grp in range(0, all_edges.size, WARP):
                sel = all_edges[grp:grp + WARP]
                yield load(_PC_EDGES, _pad32(edges + sel * 4))
                nbrs = edge_ids[sel]
                yield compute(2)
                yield load(_PC_VISITED, _pad32(visited + nbrs))
                yield compute(1)
                yield load(_PC_COST_LD, _pad32(cost + nbrs * 4))
                yield compute(2)
                # only not-yet-visited neighbours (the fresh frontier) get
                # their cost/visited entries written, as in Rodinia's
                # kernel1 — most probes are read-only
                fresh = nbrs[levels[nbrs] == depth + 1]
                if fresh.size:
                    yield store(_PC_COST_ST, _pad32(cost + fresh * 4))
                    yield store(_PC_VISITED_ST, _pad32(visited + fresh))
                yield compute(1)
            yield store(_PC_NEWMASK_ST, _pad32(mask + members))
            yield compute(2)

        return trace


def _pad32(addrs: np.ndarray) -> np.ndarray:
    """Replicate addresses up to a full 32-lane vector (partial warps)."""
    if addrs.size >= WARP:
        return addrs[:WARP]
    return np.resize(addrs, WARP)


def _group_by_chunk(frontier: np.ndarray):
    """Split frontier node ids by their warp chunk (node // 32)."""
    chunks = frontier // WARP
    order = np.argsort(chunks, kind="stable")
    sorted_chunks = chunks[order]
    sorted_nodes = frontier[order]
    uniq, starts = np.unique(sorted_chunks, return_index=True)
    groups = np.split(sorted_nodes, starts[1:])
    return uniq.tolist(), groups
