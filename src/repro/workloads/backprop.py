"""BP — Back Propagation (Rodinia; Cache Sufficient).

Rodinia's backprop trains one hidden layer of a perceptron.  The
forward kernel computes ``hidden[j] = f(sum_i input[i] * w[i][j])``:
every CTA re-reads the *same small input vector* while streaming its own
slice of the weight matrix.  The input vector is a handful of lines hit
over and over at short distances (Fig. 3: BP's RDs concentrate in the
1~4 range); the weights are compulsory-miss traffic.  The weight-update
kernel revisits the weight slice with the same structure.

Scaling: paper input 65536 input units; model uses a 512-float input
vector (16 lines) and a 192-warp weight sweep.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_INPUT = 0x500     # shared input vector (hot, short RD)
_PC_WEIGHT = 0x508    # streaming weight rows
_PC_HIDDEN_ST = 0x510
_PC_DELTA = 0x518     # backward pass: delta vector (hot)
_PC_WUPDATE_LD = 0x520
_PC_WUPDATE_ST = 0x528


class BackPropagation(Workload):
    meta = WorkloadMeta(
        name="Back Propagation",
        abbr="BP",
        suite="Rodinia",
        paper_type="CS",
        paper_input="65536",
        scaled_input="512-unit input layer, 192 hidden-unit warps",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.input_lines = 16         # 512 floats
        self.num_ctas = 24
        self.warps_per_cta = 8
        self.weight_lines_per_warp = max(4, int(16 * scale))

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        input_base = self.addr.region("input_units", self.input_lines * LINE)
        delta_base = self.addr.region("hidden_delta", self.input_lines * LINE)
        weights = self.addr.region(
            "weights", total_warps * self.weight_lines_per_warp * LINE
        )
        hidden = self.addr.region("hidden_units", total_warps * LINE)

        def forward(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            my_weights = weights + warp_index * self.weight_lines_per_warp * LINE
            for i in range(self.weight_lines_per_warp):
                # the shared input vector line: every warp on the SM hits
                # the same 16 lines round-robin -> short-distance reuse
                yield load(_PC_INPUT, self.coalesced(input_base + (i % self.input_lines) * LINE))
                yield load(_PC_WEIGHT, self.coalesced(my_weights + i * LINE))
                yield compute(12)  # 32 multiply-accumulate + activation work
            yield compute(8)
            yield store(_PC_HIDDEN_ST, self.coalesced(hidden + warp_index * LINE))

        def weight_update(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            my_weights = weights + warp_index * self.weight_lines_per_warp * LINE
            for i in range(self.weight_lines_per_warp):
                yield load(_PC_DELTA, self.coalesced(delta_base + (i % self.input_lines) * LINE))
                yield load(_PC_WUPDATE_LD, self.coalesced(my_weights + i * LINE))
                yield compute(10)
                yield store(_PC_WUPDATE_ST, self.coalesced(my_weights + i * LINE))
                yield compute(4)

        return [
            Kernel("bp_forward", self.num_ctas, self.warps_per_cta, forward),
            Kernel("bp_adjust", self.num_ctas, self.warps_per_cta, weight_update),
        ]
