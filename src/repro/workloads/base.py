"""Workload model base classes.

Each of the paper's 18 benchmarks (Table 2) is modelled as a
:class:`Workload` producing one or more :class:`~repro.gpu.kernel.Kernel`
objects whose warp traces reproduce the benchmark's *memory access
structure*: which static instructions (PCs) touch which address regions,
with what strides, divergence and reuse distances.  The actual data
values are irrelevant — every experiment in the paper is defined over
address streams — so the models are address generators, not functional
ports (see DESIGN.md Section 2 for why this preserves behaviour).

Scaling: inputs are reduced from the paper's sizes so a full run of the
timing simulator finishes in seconds of wall clock.  Each workload
documents its scaled geometry; the ``scale`` parameter multiplies the
dominant dimension for sweeps.  What is *preserved* under scaling is the
ratio of per-SM resident working set to the 16 KB L1D and the per-PC
reuse-distance ranges of Figure 3/7, which are the quantities the DLP
mechanism reacts to.

Address-space management: each logical array gets a disjoint region from
:class:`AddressMap` so distinct data structures never alias in the
cache.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.gpu.isa import WarpOp, trace_stats
from repro.gpu.kernel import Kernel
from repro.utils.rng import DeterministicRng

LINE = 128  # L1D line size; address patterns are line-structured
WARP = 32

# Region alignment: 1 MiB apart so the XOR-hash index still spreads them
_REGION_ALIGN = 1 << 20


@dataclass(frozen=True)
class WorkloadMeta:
    """Table 2 row: identity and classification of a benchmark."""

    name: str         # full benchmark name
    abbr: str         # the paper's abbreviation (figure x-axis labels)
    suite: str        # Rodinia / CUDA Samples / Mars / Parboil / Polybench
    paper_type: str   # "CS" or "CI" (paper Table 2)
    paper_input: str  # the input size the paper used
    scaled_input: str  # what this model uses instead


class AddressMap:
    """Bump allocator handing out disjoint, line-aligned array regions."""

    def __init__(self, base: int = 1 << 24):
        self._next = base
        self._regions: Dict[str, tuple] = {}

    def region(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` for array ``name``; returns the base byte
        address.  Repeated calls with the same name return the same base
        (arrays are shared across kernels of one workload)."""
        if name in self._regions:
            base, size = self._regions[name]
            if nbytes > size:
                raise ValueError(
                    f"region {name!r} re-requested with larger size "
                    f"({nbytes} > {size})"
                )
            return base
        base = self._next
        span = -(-nbytes // _REGION_ALIGN) * _REGION_ALIGN
        self._next = base + span + _REGION_ALIGN
        self._regions[name] = (base, nbytes)
        return base

    def regions(self) -> Dict[str, tuple]:
        return dict(self._regions)


class Workload(abc.ABC):
    """One Table 2 benchmark model."""

    meta: WorkloadMeta  # set by each subclass

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.addr = AddressMap()
        self.seed = 0
        self.rng = DeterministicRng(self.meta.abbr)
        self._kernels: List[Kernel] | None = None

    def reseed(self, seed: int) -> "Workload":
        """Re-key the workload's RNG stream (``seed`` 0 = the default
        stream).  Must be called before :meth:`kernels`; address streams
        are generated lazily, so reseeding after generation would leave
        stale kernels behind."""
        if self._kernels is not None:
            raise RuntimeError(
                f"{self.meta.abbr}: cannot reseed after kernels were built"
            )
        self.seed = seed
        self.rng = DeterministicRng(self.meta.abbr, salt=seed)
        return self

    # -- abstract ----------------------------------------------------------

    @abc.abstractmethod
    def build_kernels(self) -> List[Kernel]:
        """Construct the kernel launch sequence for this workload."""

    # -- public ---------------------------------------------------------------

    def kernels(self) -> List[Kernel]:
        if self._kernels is None:
            self._kernels = self.build_kernels()
            if not self._kernels:
                raise RuntimeError(f"{self.meta.abbr}: no kernels built")
        return self._kernels

    def static_stats(self) -> dict:
        """Aggregate trace statistics (thread instructions, memory ops,
        distinct PCs) across every warp — the Figure 6 inputs."""
        from repro.gpu.coalescer import coalesce_count

        totals = {
            "thread_instructions": 0,
            "mem_ops": 0,
            "mem_requests": 0,
            "distinct_pcs": set(),
        }
        for kernel in self.kernels():
            for cta in range(kernel.num_ctas):
                for w in range(kernel.warps_per_cta):
                    for op in kernel.warp_trace(cta, w):
                        if hasattr(op, "count"):  # ComputeOp
                            totals["thread_instructions"] += op.count * WARP
                        else:
                            totals["thread_instructions"] += op.active_lanes
                            totals["mem_ops"] += 1
                            totals["mem_requests"] += coalesce_count(op.addrs, LINE)
                            totals["distinct_pcs"].add(op.pc)
        totals["distinct_pcs"] = len(totals["distinct_pcs"])
        totals["mem_access_ratio"] = (
            totals["mem_requests"] / totals["thread_instructions"]
            if totals["thread_instructions"]
            else 0.0
        )
        return totals

    # -- helpers for subclasses ------------------------------------------------

    @staticmethod
    def coalesced(base: int, elem_bytes: int = 4) -> np.ndarray:
        """Per-lane addresses of a fully coalesced warp access starting at
        ``base`` (lane i reads ``base + i*elem_bytes``)."""
        return base + np.arange(WARP, dtype=np.int64) * elem_bytes

    @staticmethod
    def broadcast(addr: int) -> np.ndarray:
        """All lanes read the same address (one request after coalescing)."""
        return np.full(WARP, addr, dtype=np.int64)

    @staticmethod
    def strided(base: int, stride_bytes: int, count: int = WARP) -> np.ndarray:
        """Lane i reads ``base + i*stride_bytes`` — divergent when the
        stride exceeds the line size."""
        return base + np.arange(count, dtype=np.int64) * stride_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workload {self.meta.abbr} scale={self.scale}>"
