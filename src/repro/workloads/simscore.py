"""SS — Similarity Score (Mars MapReduce; Cache Insufficient).

Mars' SimilarityScore computes pairwise cosine similarities between
document feature vectors.  A warp owns document *i* and sweeps partner
documents *j* over the shared corpus: vector *i* is re-read every pair
(short distance) while the *j* vectors cycle through a corpus block
larger than the cache (cyclic medium-distance reuse — the
LRU-pathological pattern protection repairs).  The two load PCs have
sharply different reuse profiles, which is where per-instruction PDs
pay off over a single global PD.

Scaling: paper input 512x128; model uses 96 documents x 4-line vectors,
48 partner sweeps per warp.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_DOC_I = 0xC00   # own document vector (hot per warp)
_PC_DOC_J = 0xC08   # partner vectors (cyclic over the corpus)
_PC_SCORE = 0xC10


class SimilarityScore(Workload):
    meta = WorkloadMeta(
        name="Similarity Score",
        abbr="SS",
        suite="Mars",
        paper_type="CI",
        paper_input="512x128",
        scaled_input="256 docs x 4-line vectors, 48 pairs/warp",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 16
        self.warps_per_cta = 12
        self.num_docs = 256   # corpus ~8x the L1D: partner sweep thrashes
        self.vec_lines = 4
        self.pairs_per_warp = max(8, int(48 * scale))

    def build_kernels(self) -> List[Kernel]:
        corpus = self.addr.region("corpus", self.num_docs * self.vec_lines * LINE)
        scores = self.addr.region(
            "scores", self.num_ctas * self.warps_per_cta * self.pairs_per_warp * 4
        )
        vec_bytes = self.vec_lines * LINE

        def trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            doc_i = corpus + (warp_index % self.num_docs) * vec_bytes
            start_j = (warp_index * 17) % self.num_docs
            for p in range(self.pairs_per_warp):
                doc_j = corpus + ((start_j + p) % self.num_docs) * vec_bytes
                for seg in range(self.vec_lines):
                    yield load(_PC_DOC_I, self.coalesced(doc_i + seg * LINE))
                    yield load(_PC_DOC_J, self.coalesced(doc_j + seg * LINE))
                    yield compute(3)  # dot-product partial
                yield compute(5)  # normalisation
                if p % 8 == 7:
                    yield store(
                        _PC_SCORE,
                        self.coalesced(scores + warp_index * self.pairs_per_warp * 4),
                    )

        return [Kernel("ss_pairs", self.num_ctas, self.warps_per_cta, trace)]
