"""SRK — Symmetric Rank-k update (Polybench; Cache Insufficient).

Polybench's SYRK computes ``C = alpha*A*A^T + beta*C`` untiled: thread
(i, j) walks ``sum_k A[i,k] * A[j,k]``.  A warp (fixed i, 32 consecutive
j... transposed here to the Polybench GPU layout: fixed i-row, j block)
re-reads its own A row at short distances while sweeping the *other*
rows of A cyclically — with the row working set about twice the L1D, the
sweep is the LRU-pathological cyclic pattern where lines protected for a
handful of set queries convert misses into hits.

Scaling: paper input 256x256; model uses an 80x128 A matrix
(80 rows x 2 lines).
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_A_OWN = 0xF00   # A[i, :] — own row (hot)
_PC_A_OTHER = 0xF08  # A[j, :] — cyclic sweep over all rows
_PC_C_LD = 0xF10
_PC_C_ST = 0xF18


class Syrk(Workload):
    meta = WorkloadMeta(
        name="Symmetric Rank-k",
        abbr="SRK",
        suite="Polybench",
        paper_type="CI",
        paper_input="256x256",
        scaled_input="192-row x 2-line A, full rank-k sweep",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.rows = max(32, int(192 * scale))
        self.row_lines = 2
        self.warps_per_cta = 10

    def build_kernels(self) -> List[Kernel]:
        row_bytes = self.row_lines * LINE
        a = self.addr.region("A", self.rows * row_bytes)
        c = self.addr.region("C", self.rows * row_bytes)
        num_ctas = max(1, self.rows // self.warps_per_cta)

        def trace(cta: int, w: int):
            i = (cta * self.warps_per_cta + w) % self.rows
            my_row = a + i * row_bytes
            yield load(_PC_C_LD, self.coalesced(c + i * row_bytes))
            # own row: loaded once, then carried in registers across the
            # whole j sweep (the unrolled Polybench kernel does exactly
            # this for the thread's own operand)
            for seg in range(self.row_lines):
                yield load(_PC_A_OWN, self.coalesced(my_row + seg * LINE))
            yield compute(4)
            start = (i * 29) % self.rows
            for jj in range(self.rows):
                j = (start + jj) % self.rows
                for seg in range(self.row_lines):
                    yield load(_PC_A_OTHER, self.coalesced(a + j * row_bytes + seg * LINE))
                    yield compute(2)
            yield compute(4)
            yield store(_PC_C_ST, self.coalesced(c + i * row_bytes))

        return [Kernel("syrk", num_ctas, self.warps_per_cta, trace)]
