"""NW — Needleman-Wunsch (Rodinia; Cache Sufficient).

Dynamic-programming sequence alignment processed in anti-diagonal
wavefronts: each kernel launch handles one diagonal of tiles, and a tile
reads its left/top boundary (produced by the previous diagonal, so
re-referenced at moderate distance), the reference-matrix tile
(compulsory) and writes its own boundary.  Parallelism is limited by the
diagonal width — few CTAs are resident, memory is a small fraction of
the run, and IPC barely reacts to the L1D (Fig. 5: NW gains little from
larger caches).

Scaling: paper input 1024x1024; model uses a 12x12 tile grid
(23 diagonal kernel launches).
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_LEFT = 0x700     # left boundary column (previous diagonal's output)
_PC_TOP = 0x708      # top boundary row
_PC_REF = 0x710      # reference similarity matrix (streaming)
_PC_STORE = 0x718


class NeedlemanWunsch(Workload):
    meta = WorkloadMeta(
        name="Needleman-Wunsch",
        abbr="NW",
        suite="Rodinia",
        paper_type="CS",
        paper_input="1024x1024",
        scaled_input="12x12 tile wavefront, 2-line tile boundaries",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.tiles = max(4, int(12 * scale))
        self.boundary_lines = 2
        self.warps_per_cta = 4
        self.inner_steps = 8   # wavefront steps inside one tile

    def build_kernels(self) -> List[Kernel]:
        t = self.tiles
        tile_bytes = self.boundary_lines * LINE
        bounds = self.addr.region("boundaries", t * t * tile_bytes * 2)
        ref = self.addr.region("reference", t * t * self.inner_steps * LINE)

        def make_trace(diag: int, tiles_on_diag: List[tuple]):
            def trace(cta: int, w: int):
                ti, tj = tiles_on_diag[cta]
                tile_id = ti * t + tj
                left = bounds + tile_id * tile_bytes * 2
                top = left + tile_bytes
                my_ref = ref + tile_id * self.inner_steps * LINE
                for step in range(self.inner_steps):
                    if w == 0:
                        seg = step % self.boundary_lines
                        yield load(_PC_LEFT, self.coalesced(left + seg * LINE))
                        yield load(_PC_TOP, self.coalesced(top + seg * LINE))
                    yield load(_PC_REF, self.coalesced(my_ref + step * LINE))
                    # max/compare chain per DP cell
                    yield compute(10)
                if w == 0:
                    # publish boundary for the next diagonal's neighbours
                    for nbr in ((ti + 1, tj), (ti, tj + 1)):
                        ni, nj = nbr
                        if ni < t and nj < t:
                            nid = ni * t + nj
                            dest = bounds + nid * tile_bytes * 2
                            yield store(_PC_STORE, self.coalesced(dest))
                yield compute(6)

            return trace

        kernels = []
        for diag in range(2 * t - 1):
            tiles_on_diag = [
                (i, diag - i) for i in range(t) if 0 <= diag - i < t
            ]
            kernels.append(
                Kernel(
                    f"nw_diag{diag}",
                    len(tiles_on_diag),
                    self.warps_per_cta,
                    make_trace(diag, tiles_on_diag),
                )
            )
        return kernels
