"""SC — Separable Convolution (Cache Sufficient).

A row-then-column separable image filter.  The row pass slides a
radius-8 window along each image row: the window spans two or three
consecutive lines, and advancing one tile re-references the line just
loaded — back-to-back, so the reuse distances are short (Fig. 3: SC's
RDs concentrate in the 1~4 range).  The column pass reads a vertical
neighbourhood whose rows are shared between consecutive warp rows,
again at short distances.  Generous per-tap arithmetic keeps the
memory-access ratio under 1 %.

Scaling: paper input 2048x512; model filters a 64-line-wide strip of 96
rows with radius 8.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_ROW_MAIN = 0x400   # row pass: tile load
_PC_ROW_APRON = 0x408  # row pass: apron (next line, re-referenced soon)
_PC_ROW_STORE = 0x410
_PC_COL_MAIN = 0x418   # column pass: centre row
_PC_COL_NBR = 0x420    # column pass: vertical neighbours
_PC_COL_STORE = 0x428


class SeparableConvolution(Workload):
    meta = WorkloadMeta(
        name="Separable Convolution",
        abbr="SC",
        suite="Rodinia",
        paper_type="CS",
        paper_input="2048x512",
        scaled_input="96 rows x 16 lines, radius-8 separable filter",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.rows = max(16, int(96 * scale))
        self.lines_per_row = 16
        self.warps_per_cta = 8
        self.num_ctas = self.rows // self.warps_per_cta

    def build_kernels(self) -> List[Kernel]:
        row_bytes = self.lines_per_row * LINE
        img = self.addr.region("image", self.rows * row_bytes)
        tmp = self.addr.region("row_result", self.rows * row_bytes)
        out = self.addr.region("output", self.rows * row_bytes)

        def row_trace(cta: int, w: int):
            row = cta * self.warps_per_cta + w
            base = img + row * row_bytes
            for tile in range(self.lines_per_row):
                yield load(_PC_ROW_MAIN, self.coalesced(base + tile * LINE))
                if tile + 1 < self.lines_per_row:
                    # right apron: the very line the next tile re-reads
                    yield load(_PC_ROW_APRON, self.coalesced(base + (tile + 1) * LINE))
                yield compute(17)  # 17 taps per output element
                yield store(_PC_ROW_STORE, self.coalesced(tmp + row * row_bytes + tile * LINE))
                yield compute(4)

        def col_trace(cta: int, w: int):
            row = cta * self.warps_per_cta + w
            for tile in range(self.lines_per_row):
                centre = tmp + row * row_bytes + tile * LINE
                yield load(_PC_COL_MAIN, self.coalesced(centre))
                # vertical taps: rows row-1 and row+1 are also the centre
                # rows of the adjacent warps -> short-distance sharing
                for dy in (-1, 1):
                    nbr = row + dy
                    if 0 <= nbr < self.rows:
                        yield load(
                            _PC_COL_NBR,
                            self.coalesced(tmp + nbr * row_bytes + tile * LINE),
                        )
                yield compute(17)
                yield store(_PC_COL_STORE, self.coalesced(out + row * row_bytes + tile * LINE))
                yield compute(4)

        return [
            Kernel("sc_rows", self.num_ctas, self.warps_per_cta, row_trace),
            Kernel("sc_cols", self.num_ctas, self.warps_per_cta, col_trace),
        ]
