"""HG — Histogram (CUDA Samples; Cache Sufficient).

Structure of the CUDA-Samples 64-bin/256-bin histogram: each warp
streams through its slice of the input array and accumulates into a
*per-warp private* sub-histogram (the real kernel keeps these in shared
memory banks; Mars-style variants keep them in global memory, which is
what we model so bin traffic reaches the L1D).  A final merge kernel
reduces the sub-histograms.

Reuse behaviour this reproduces (Fig. 3: HG's reuses are almost all
RD > 65, Fig. 6: HG has the lowest memory-access ratio):

* input is a pure stream — compulsory misses, never reused;
* each warp's 8 private bin lines are re-touched only after a long run
  of input lines and the other resident warps' traffic, so their per-set
  reuse distances land deep in the long range;
* per-element bin selection and accumulation is compute-heavy, keeping
  the memory-access ratio far below 1 %.

Scaling: paper input 67108864 elements; the model streams
``chunks_per_warp`` lines per warp over a 192-CTA-warp grid.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_INPUT = 0x100      # streaming input read
_PC_BIN_LOAD = 0x108   # private sub-histogram read-modify-write (read)
_PC_BIN_STORE = 0x110  # private sub-histogram write
_PC_MERGE_LOAD = 0x118  # final merge reads
_PC_MERGE_STORE = 0x120


class Histogram(Workload):
    meta = WorkloadMeta(
        name="Histogram",
        abbr="HG",
        suite="CUDA Samples",
        paper_type="CS",
        paper_input="67108864",
        scaled_input="147456 elements, 1024 bins, per-warp sub-histograms",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 24
        self.warps_per_cta = 8
        self.chunks_per_warp = max(4, int(32 * scale))
        self.bins_lines = 32  # 1024 bins x 4 B = 32 lines per warp

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        input_bytes = total_warps * self.chunks_per_warp * LINE
        input_base = self.addr.region("input", input_bytes)
        bins_base = self.addr.region(
            "sub_histograms", total_warps * self.bins_lines * LINE
        )
        final_base = self.addr.region("histogram", self.bins_lines * LINE)
        rng = self.rng

        def main_trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            my_input = input_base + warp_index * self.chunks_per_warp * LINE
            my_bins = bins_base + warp_index * self.bins_lines * LINE
            # pre-draw the bin line touched after each input chunk (Zipf:
            # real inputs have skewed bin popularity)
            bin_lines = rng.zipf_indices(self.bins_lines, self.chunks_per_warp, 0.8)
            for i in range(self.chunks_per_warp):
                yield load(_PC_INPUT, self.coalesced(my_input + i * LINE))
                # per-element bin computation: shifts, compares, shared-mem
                # style accumulation -> heavy ALU work per input line
                yield compute(44)
                if i % 2 == 0:
                    bin_addr = my_bins + int(bin_lines[i]) * LINE
                    yield load(_PC_BIN_LOAD, self.broadcast(bin_addr))
                    yield compute(12)
                    yield store(_PC_BIN_STORE, self.broadcast(bin_addr))
                yield compute(24)

        def merge_trace(cta: int, w: int):
            # each merge warp reduces one bin line across all sub-histograms
            line = (cta * self.warps_per_cta + w) % self.bins_lines
            for warp_index in range(0, self.num_ctas * self.warps_per_cta, 8):
                src = bins_base + (warp_index * self.bins_lines + line) * LINE
                yield load(_PC_MERGE_LOAD, self.coalesced(src))
                yield compute(4)
            yield store(_PC_MERGE_STORE, self.coalesced(final_base + line * LINE))

        return [
            Kernel("hg_main", self.num_ctas, self.warps_per_cta, main_trace),
            Kernel("hg_merge", 1, self.bins_lines, merge_trace),
        ]
