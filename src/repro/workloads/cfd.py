"""CFD — Computational Fluid Dynamics (Rodinia; Cache Insufficient).

Rodinia's CFD is an unstructured-mesh Euler solver: per time step it
computes fluxes for every cell from the cell's five conserved variables
and those of its four neighbours, in several passes over the mesh.
Each warp owns a 32-cell block; one pass loads the block's five variable
lines plus neighbour lines from adjacent blocks.  With 48 resident
warps x ~7 lines the per-SM working set is ~2.5x the 16 KB L1D, and the
inter-pass / inter-warp re-references land at protectable distances —
this is one of the applications where the paper's Fig. 10 shows
Global-Protection and DLP beating even the 32 KB cache.

Scaling: paper input 97046 cells (missile.domn); model uses 6144 cells
over 3 flux passes.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_DENSITY = 0xA00
_PC_MOMENTUM = 0xA08
_PC_ENERGY = 0xA10
_PC_NEIGHBOR = 0xA18   # neighbour-cell gather (irregular)
_PC_NORMALS = 0xA20    # face normals (streaming)
_PC_FLUX_STORE = 0xA28


class Cfd(Workload):
    meta = WorkloadMeta(
        name="Computational Fluid Dynamics",
        abbr="CFD",
        suite="Rodinia",
        paper_type="CI",
        paper_input="97046",
        scaled_input="6144 cells, 3 flux passes, 4-neighbour gather",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 16
        self.warps_per_cta = 12
        self.passes = max(1, int(3 * scale))
        self.var_lines = 5   # rho, 3x momentum, energy: one line per var per block

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        block_bytes = self.var_lines * LINE
        variables = self.addr.region("variables", total_warps * block_bytes)
        normals = self.addr.region("normals", total_warps * self.passes * 2 * LINE)
        fluxes = self.addr.region("fluxes", total_warps * block_bytes)
        rng = self.rng

        def make_trace(pass_id: int):
            def trace(cta: int, w: int):
                warp_index = cta * self.warps_per_cta + w
                my_block = variables + warp_index * block_bytes
                # neighbour blocks: unstructured meshes renumbered with
                # locality, so neighbours are nearby warp blocks
                offsets = rng.integers(1, 5, size=4)
                for step in range(2):
                    yield load(_PC_DENSITY, self.coalesced(my_block))
                    yield load(_PC_MOMENTUM, self.coalesced(my_block + LINE))
                    yield load(_PC_MOMENTUM, self.coalesced(my_block + 2 * LINE))
                    yield load(_PC_ENERGY, self.coalesced(my_block + 3 * LINE))
                    yield compute(3)
                    for k in range(2):
                        nbr = (warp_index + int(offsets[step * 2 + k])) % total_warps
                        nbr_block = variables + nbr * block_bytes
                        yield load(
                            _PC_NEIGHBOR, self.coalesced(nbr_block + (k % self.var_lines) * LINE)
                        )
                        yield compute(2)
                    nrm = normals + (warp_index * self.passes + pass_id) * 2 * LINE
                    yield load(_PC_NORMALS, self.coalesced(nrm + step * LINE))
                    yield compute(4)
                yield store(_PC_FLUX_STORE, self.coalesced(fluxes + warp_index * block_bytes))
                yield compute(2)

            return trace

        return [
            Kernel(f"cfd_flux{p}", self.num_ctas, self.warps_per_cta, make_trace(p))
            for p in range(self.passes)
        ]
