"""KM — K-means (Rodinia; Cache Insufficient).

Rodinia's K-means assignment kernel computes each point's distance to
every centroid.  With more centroids than registers can hold, the k loop
re-reads the point's feature lines once per centroid chunk — so each
warp's four private feature lines are re-referenced throughout the
centroid sweep, but with 48 warps resident the per-set distance between
those re-references lands just beyond the 4-way associativity: the
baseline evicts them between chunks (thrash), the VTA observes the loss,
and a protection distance in the 8~12 range repairs it.  The centroid
table itself is shared by every warp and stays warm, while the
point stream advances monotonically (compulsory) — three PCs with three
very different reuse profiles, which is the per-instruction-PD story.

Scaling: paper input 204800 points; model assigns 9216 points to 64
centroids in 8 chunks over 4 features.
"""

from __future__ import annotations

from typing import List

from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.workloads.base import LINE, Workload, WorkloadMeta

_PC_FEATURE = 0x1100   # point features: revisited once per centroid chunk
_PC_CENTROID = 0x1108  # centroid table (shared, warm)
_PC_ASSIGN = 0x1110


class Kmeans(Workload):
    meta = WorkloadMeta(
        name="K-means",
        abbr="KM",
        suite="Rodinia",
        paper_type="CI",
        paper_input="204800",
        scaled_input="6912 points, 64 centroids in 8 chunks, 6 features",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.num_ctas = 16
        self.warps_per_cta = 12
        self.points_per_warp = max(2, int(6 * scale))  # 32-point blocks
        self.centroid_chunks = 8
        self.num_features = 6

    def build_kernels(self) -> List[Kernel]:
        total_warps = self.num_ctas * self.warps_per_cta
        total_points = total_warps * self.points_per_warp * 32
        feats = self.addr.region("features", total_points * self.num_features * 4)
        cents = self.addr.region(
            "centroids", self.centroid_chunks * self.num_features * LINE
        )
        assign = self.addr.region("assignment", total_points * 4)

        def trace(cta: int, w: int):
            warp_index = cta * self.warps_per_cta + w
            for p in range(self.points_per_warp):
                point_block = warp_index * self.points_per_warp + p
                for k in range(self.centroid_chunks):
                    # chunk k's centroid block: shared by every warp, warm
                    yield load(
                        _PC_CENTROID,
                        self.broadcast(cents + k * self.num_features * LINE),
                    )
                    for f in range(self.num_features):
                        # feature f of the warp's 32 points: private lines
                        # re-read once per centroid chunk
                        addr = feats + (f * total_points + point_block * 32) * 4
                        yield load(_PC_FEATURE, self.coalesced(addr))
                        yield compute(2)  # 8 distance partials
                    yield compute(2)
                yield compute(4)  # argmin reduction over 64 distances
                yield store(_PC_ASSIGN, self.coalesced(assign + point_block * 32 * 4))

        return [Kernel("km_assign", self.num_ctas, self.warps_per_cta, trace)]
