"""Synthetic models of the paper's 18 benchmarks (Table 2).

Each module reproduces one benchmark's *memory access structure* — the
per-PC address streams, strides, divergence and reuse distances that
the DLP mechanism reacts to — at inputs scaled to finish in seconds.
See ``base.py`` for the modelling rules and DESIGN.md for the
substitution argument.
"""

from repro.workloads.base import AddressMap, Workload, WorkloadMeta
from repro.workloads.registry import (
    ALL_APPS,
    CI_APPS,
    CS_APPS,
    WORKLOADS,
    make_workload,
    register_trace_workload,
    table2_rows,
    unregister_workload,
)

__all__ = [
    "Workload",
    "WorkloadMeta",
    "AddressMap",
    "WORKLOADS",
    "ALL_APPS",
    "CS_APPS",
    "CI_APPS",
    "make_workload",
    "register_trace_workload",
    "unregister_workload",
    "table2_rows",
]
