"""Baseline L1D policy: LRU replacement, stall on resource exhaustion.

This is the 16 KB baseline configuration of Table 1 — the scheme every
figure normalizes against.  It inherits the protocol behaviour of
:class:`repro.core.policy.CachePolicy` and only pins down the victim
selector so tests exercise the shared helper.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement import lru_victim
from repro.core.policy import CachePolicy


class BaselinePolicy(CachePolicy):
    name = "baseline"

    def select_victim(self, cache_set, access) -> Optional[object]:
        return lru_victim(cache_set)
