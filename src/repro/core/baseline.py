"""Baseline L1D policy: LRU replacement, stall on resource exhaustion.

This is the 16 KB baseline configuration of Table 1 — the scheme every
figure normalizes against.  It inherits the protocol behaviour of
:class:`repro.core.policy.CachePolicy` and only pins down the victim
selector so tests exercise the shared helper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cache.replacement import lru_victim
from repro.core.policy import CachePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.l1d import MemAccess
    from repro.cache.line import CacheLine
    from repro.cache.tagarray import CacheSet


class BaselinePolicy(CachePolicy):
    name = "baseline"

    def select_victim(
        self, cache_set: "CacheSet", access: "MemAccess"
    ) -> Optional["CacheLine"]:
        return lru_victim(cache_set)
