"""Cache-management policy interface.

The four schemes the paper evaluates (baseline LRU, Stall-Bypass,
Global-Protection, DLP) differ only in

* how a victim is chosen inside a set (protection constrains LRU),
* whether a request that cannot allocate is *bypassed* or *stalled*,
* what bookkeeping runs on set queries / hits / misses / evictions
  (PL decay, VTA insertion and probing, PDPT hit accounting, sampling).

This module defines the hook surface; :mod:`repro.cache.l1d` drives it at
the protocol points of the paper's Figure 1/8 flow:

    access -> on_set_query -> hit?  -> on_hit
                           -> miss? -> on_miss (VTA probe)
                                    -> MSHR merge / allocate
                                    -> select_victim -> on_evict / bypass
    every access ends with on_access_done (sampling tick)
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.l1d import L1DCache, MemAccess
    from repro.cache.line import CacheLine
    from repro.cache.tagarray import CacheSet


class StallReason(enum.Enum):
    """Why the baseline L1D would block the memory pipeline (Section 2)."""

    MSHR_FULL = "mshr_full"
    MERGE_FULL = "merge_full"
    NO_RESERVABLE_LINE = "no_reservable_line"
    MISS_QUEUE_FULL = "miss_queue_full"


class CachePolicy:
    """Base policy: plain LRU, stall on every resource exhaustion.

    Subclasses override the hooks they care about.  The base class is a
    correct implementation of the paper's baseline configuration, so
    :class:`repro.core.baseline.BaselinePolicy` is a thin alias.
    """

    name = "base"

    def __init__(self) -> None:
        self.cache: Optional["L1DCache"] = None

    # -- lifecycle -------------------------------------------------------

    def attach(self, cache: "L1DCache") -> None:
        """Called once when the cache is constructed."""
        self.cache = cache

    def reset(self) -> None:
        """Clear policy state between kernels/runs (stats survive)."""

    # -- protocol hooks ---------------------------------------------------

    def on_set_query(self, cache_set: "CacheSet", access: "MemAccess") -> None:
        """Every request that reaches the cache queries one set."""

    def on_hit(self, line: "CacheLine", access: "MemAccess", reserved: bool) -> None:
        """TDA hit (``reserved=True`` for a hit on a pending fill)."""

    def on_miss(self, access: "MemAccess") -> None:
        """TDA miss, before MSHR handling (DLP probes the VTA here)."""

    def select_victim(
        self, cache_set: "CacheSet", access: "MemAccess"
    ) -> Optional["CacheLine"]:
        """Choose a line to replace; ``None`` means no line is replaceable.

        Baseline: an INVALID line if any, else LRU among VALID lines
        (RESERVED lines are never replaceable).
        """
        invalid = cache_set.find_invalid()
        if invalid is not None:
            return invalid
        candidates = cache_set.replaceable()
        if not candidates:
            return None
        return min(candidates, key=lambda line: line.lru_stamp)

    def bypass_on_no_victim(self, access: "MemAccess") -> bool:
        """Bypass instead of stalling when no victim exists in the set."""
        return False

    def bypass_on_stall(self, reason: StallReason, access: "MemAccess") -> bool:
        """Bypass instead of stalling on MSHR/miss-queue exhaustion."""
        return False

    def on_allocate(self, line: "CacheLine", access: "MemAccess") -> None:
        """A line was reserved for this miss (PL is written here)."""

    def on_evict(self, line: "CacheLine") -> None:
        """A valid line is being replaced (DLP inserts into the VTA)."""

    def on_bypass(self, access: "MemAccess") -> None:
        """The request was sent to the interconnect uncached."""

    def on_access_done(self, access: "MemAccess", outcome: "enum.Enum") -> None:
        """Runs once per completed (non-stalled) access: sampling tick."""

    # -- external notifications ------------------------------------------

    def notify_instructions(self, count: int) -> None:
        """The core executed ``count`` thread instructions (sampling cap)."""

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Policy-internal statistics for reports and tests."""
        return {}

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
