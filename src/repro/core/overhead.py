"""Hardware-cost model for the DLP extensions (paper Section 4.3).

The paper costs the scheme at 1264 extra bytes against a 16896-byte
baseline cache array (16 KB of data plus 512 B of tags), i.e. 7.48 %.
This module recomputes that from first principles so a unit test pins the
published numbers and the ablation benches can cost variants (different
VTA associativity, PL width, PDPT size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cache.tagarray import CacheGeometry
from repro.core.pdpt import INSN_ID_BITS, PD_BITS, PDPT_ENTRIES, TDA_HIT_BITS, VTA_HIT_BITS

TAG_BITS = 32  # address tag width used by the paper's VTA costing


@dataclass(frozen=True)
class OverheadReport:
    """Byte-level breakdown of the DLP storage additions."""

    tda_extension_bytes: int
    vta_bytes: int
    pdpt_bytes: int
    baseline_bytes: int

    @property
    def total_extra_bytes(self) -> int:
        return self.tda_extension_bytes + self.vta_bytes + self.pdpt_bytes

    @property
    def overhead_fraction(self) -> float:
        return self.total_extra_bytes / self.baseline_bytes

    def rows(self) -> List[Tuple[str, int]]:
        """(component, bytes) rows for the report renderer."""
        return [
            ("TDA extension (insn ID + PL)", self.tda_extension_bytes),
            ("Victim Tag Array", self.vta_bytes),
            ("PDPT", self.pdpt_bytes),
            ("total extra", self.total_extra_bytes),
            ("baseline cache", self.baseline_bytes),
        ]


def _bits_to_bytes(bits: int) -> int:
    return bits // 8 + (1 if bits % 8 else 0)


def compute_overhead(
    geometry: CacheGeometry | None = None,
    vta_assoc: int | None = None,
    insn_id_bits: int = INSN_ID_BITS,
    pl_bits: int = PD_BITS,
    pdpt_entries: int = PDPT_ENTRIES,
    tda_hit_bits: int = TDA_HIT_BITS,
    vta_hit_bits: int = VTA_HIT_BITS,
    pd_bits: int = PD_BITS,
    tag_bits: int = TAG_BITS,
) -> OverheadReport:
    """Cost the DLP additions for a cache geometry (defaults = Table 1).

    Matches the paper's arithmetic exactly for the baseline config:

    * TDA extension: (7 + 4) bits x 128 lines  = 1408 bits = 176 B
    * VTA:          (32 + 7) bits x 128 entries = 4992 bits = 624 B
    * PDPT:  (7 + 8 + 10 + 4) bits x 128 entries = 3712 bits = 464 B
    * total: 1264 B over a 16896 B baseline -> 7.48 %
    """
    geometry = geometry or CacheGeometry(num_sets=32, assoc=4, line_size=128)
    num_lines = geometry.num_sets * geometry.assoc
    vta_entries = geometry.num_sets * (
        vta_assoc if vta_assoc is not None else geometry.assoc
    )

    tda_ext_bits = (insn_id_bits + pl_bits) * num_lines
    vta_bits = (tag_bits + insn_id_bits) * vta_entries
    pdpt_bits = (insn_id_bits + tda_hit_bits + vta_hit_bits + pd_bits) * pdpt_entries

    # The paper's 16896-byte baseline = data array + 32-bit tags per line.
    baseline_bytes = geometry.size_bytes + _bits_to_bytes(tag_bits * num_lines)

    return OverheadReport(
        tda_extension_bytes=_bits_to_bytes(tda_ext_bits),
        vta_bytes=_bits_to_bytes(vta_bits),
        pdpt_bytes=_bits_to_bytes(pdpt_bits),
        baseline_bytes=baseline_bytes,
    )
