"""Victim Tag Array (paper Section 4.1.2).

A tag-only shadow of the L1D: same number of sets, configurable
associativity (the paper sets it equal to the cache associativity), LRU
replacement.  Each entry stores the evicted line's tag plus the 7-bit
instruction ID, so a later miss that hits in the VTA can credit the reuse
to the instruction whose line was evicted too early.

A VTA hit consumes the entry: the line is about to be refetched (or
bypassed), so keeping the stale tag would double-count one reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.tagarray import CacheGeometry
from repro.check.contracts import BitField, hw_checked
from repro.core.pdpt import INSN_ID_BITS


@hw_checked(insn_id=BitField(INSN_ID_BITS))
@dataclass
class VictimEntry:
    """One VTA slot: evicted tag + the paper's 7-bit instruction ID
    (width contract-enforced under ``REPRO_CHECK=1``)."""

    valid: bool = False
    tag: int = -1
    insn_id: int = 0
    lru_stamp: int = 0


class VictimTagArray:
    """Set-associative array of evicted-line tags."""

    def __init__(self, geometry: CacheGeometry, assoc: Optional[int] = None) -> None:
        self.geometry = geometry
        self.assoc = assoc if assoc is not None else geometry.assoc
        if self.assoc < 1:
            raise ValueError(f"VTA associativity must be positive, got {self.assoc}")
        self.sets: List[List[VictimEntry]] = [
            [VictimEntry() for _ in range(self.assoc)]
            for _ in range(geometry.num_sets)
        ]
        self._stamp = 0
        self.inserts = 0
        self.hits = 0
        self.probes = 0

    @property
    def num_entries(self) -> int:
        return self.geometry.num_sets * self.assoc

    def _set_for(self, block_addr: int) -> List[VictimEntry]:
        return self.sets[self.geometry.set_index(block_addr)]

    def insert(self, block_addr: int, insn_id: int) -> None:
        """Record an evicted line's tag (LRU replacement within the set)."""
        self._stamp += 1
        entries = self._set_for(block_addr)
        tag = self.geometry.tag(block_addr)
        victim: Optional[VictimEntry] = None
        for entry in entries:
            if entry.valid and entry.tag == tag:
                victim = entry  # re-eviction of the same tag: refresh
                break
            if victim is None and not entry.valid:
                victim = entry
        if victim is None:
            victim = min(entries, key=lambda e: e.lru_stamp)
        victim.valid = True
        victim.tag = tag
        victim.insn_id = insn_id
        victim.lru_stamp = self._stamp
        self.inserts += 1

    def probe(self, block_addr: int) -> Optional[int]:
        """Search for a tag; on hit, invalidate the entry and return the
        stored instruction ID.  Returns ``None`` on miss."""
        self.probes += 1
        entries = self._set_for(block_addr)
        tag = self.geometry.tag(block_addr)
        for entry in entries:
            if entry.valid and entry.tag == tag:
                entry.valid = False
                self.hits += 1
                return entry.insn_id
        return None

    def occupancy(self) -> int:
        return sum(1 for s in self.sets for e in s if e.valid)

    def reset(self) -> None:
        for entries in self.sets:
            for entry in entries:
                entry.valid = False
                entry.tag = -1
                entry.insn_id = 0
                entry.lru_stamp = 0
        self._stamp = 0
