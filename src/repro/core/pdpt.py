"""Protection Distance Prediction Table (paper Section 4.1.3).

128 entries, directly indexed by the 7-bit hashed instruction ID.  Each
entry holds a saturating 8-bit TDA-hit counter, a 10-bit VTA-hit counter
and the 4-bit Protection Distance computed for the next sampling period.
Hit counters are cleared at the end of every sample; PDs persist and are
adjusted incrementally by the Figure 9 flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.check.contracts import (
    BitField,
    SaturatingCounter,
    hw_checked,
    set_field_width,
)

PDPT_ENTRIES = 128
INSN_ID_BITS = 7
TDA_HIT_BITS = 8
VTA_HIT_BITS = 10
PD_BITS = 4


@hw_checked(
    insn_id=BitField(INSN_ID_BITS),
    tda_hits=SaturatingCounter(TDA_HIT_BITS),
    vta_hits=SaturatingCounter(VTA_HIT_BITS),
    pd=BitField(PD_BITS),
)
@dataclass
class PdptEntry:
    """One per-instruction record.  Plain ints with explicit saturation —
    kept branch-light because this sits on the cache hot path.  Field
    widths are the paper's (Fig. 8), contract-enforced under
    ``REPRO_CHECK=1``."""

    insn_id: int
    tda_hits: int = 0
    vta_hits: int = 0
    pd: int = 0
    # not hardware: lifetime activity marker so reports can skip idle rows
    ever_used: bool = False


def _make_entry(
    insn_id: int,
    iid_bits: int,
    tda_hit_bits: int,
    vta_hit_bits: int,
    pd_bits: int,
) -> PdptEntry:
    """Build one entry, re-widening contracts for ablation shapes
    *before* the first field write (no-op unless REPRO_CHECK is set)."""
    entry = PdptEntry.__new__(PdptEntry)
    if iid_bits != INSN_ID_BITS:
        set_field_width(entry, "insn_id", iid_bits)
    if tda_hit_bits != TDA_HIT_BITS:
        set_field_width(entry, "tda_hits", tda_hit_bits)
    if vta_hit_bits != VTA_HIT_BITS:
        set_field_width(entry, "vta_hits", vta_hit_bits)
    if pd_bits != PD_BITS:
        set_field_width(entry, "pd", pd_bits)
    entry.__init__(insn_id)
    return entry


class PredictionTable:
    """The PDPT plus the global (program-level) hit accumulators."""

    def __init__(
        self,
        num_entries: int = PDPT_ENTRIES,
        tda_hit_bits: int = TDA_HIT_BITS,
        vta_hit_bits: int = VTA_HIT_BITS,
        pd_bits: int = PD_BITS,
    ) -> None:
        if num_entries < 1:
            raise ValueError("PDPT needs at least one entry")
        self.num_entries = num_entries
        self.tda_hit_max = (1 << tda_hit_bits) - 1
        self.vta_hit_max = (1 << vta_hit_bits) - 1
        self.pd_max = (1 << pd_bits) - 1
        iid_bits = max(INSN_ID_BITS, (num_entries - 1).bit_length())
        self.entries: List[PdptEntry] = [
            _make_entry(i, iid_bits, tda_hit_bits, vta_hit_bits, pd_bits)
            for i in range(num_entries)
        ]
        # Program-level accumulators for the global check of Fig. 9.  Kept
        # separately from the per-entry counters so per-entry saturation
        # does not distort the global comparison.
        self.global_tda_hits = 0
        self.global_vta_hits = 0

    def _entry(self, insn_id: int) -> PdptEntry:
        # Hardware indexes with the low 7 bits; IDs are already folded to
        # that width by repro.utils.hashing.hash_pc, but defend anyway.
        return self.entries[insn_id % self.num_entries]

    # -- hit accounting ---------------------------------------------------

    def record_tda_hit(self, insn_id: int) -> None:
        entry = self._entry(insn_id)
        if entry.tda_hits < self.tda_hit_max:
            entry.tda_hits += 1
        entry.ever_used = True
        self.global_tda_hits += 1

    def record_vta_hit(self, insn_id: int) -> None:
        entry = self._entry(insn_id)
        if entry.vta_hits < self.vta_hit_max:
            entry.vta_hits += 1
        entry.ever_used = True
        self.global_vta_hits += 1

    # -- PD access ----------------------------------------------------------

    def pd(self, insn_id: int) -> int:
        return self._entry(insn_id).pd

    def set_pd(self, insn_id: int, value: int) -> None:
        entry = self._entry(insn_id)
        entry.pd = min(max(value, 0), self.pd_max)

    def adjust_pd(self, insn_id: int, delta: int) -> int:
        entry = self._entry(insn_id)
        entry.pd = min(max(entry.pd + delta, 0), self.pd_max)
        return entry.pd

    def decrease_all(self, delta: int) -> None:
        if delta < 0:
            raise ValueError(f"decrease delta must be non-negative, got {delta}")
        for entry in self.entries:
            if entry.pd:
                entry.pd = max(entry.pd - delta, 0)

    # -- sampling ----------------------------------------------------------

    def clear_hits(self) -> None:
        """End-of-sample reset: hit counters to zero, PDs preserved."""
        for entry in self.entries:
            entry.tda_hits = 0
            entry.vta_hits = 0
        self.global_tda_hits = 0
        self.global_vta_hits = 0

    def reset(self) -> None:
        """Between-kernel reset: learned state (hit counters *and* PDs)
        is cleared in place.  The ``ever_used`` lifetime markers survive
        ("stats survive" — the reset contract of
        :meth:`repro.core.policy.CachePolicy.reset`), and reusing the
        entry objects keeps any ablation contract widths installed on
        them."""
        for entry in self.entries:
            entry.tda_hits = 0
            entry.vta_hits = 0
            entry.pd = 0
        self.global_tda_hits = 0
        self.global_vta_hits = 0

    def active_entries(self) -> Iterator[PdptEntry]:
        """Entries that saw any hit this sample (PD-increase path scope)."""
        for entry in self.entries:
            if entry.tda_hits or entry.vta_hits:
                yield entry

    def snapshot(self) -> Dict[int, Dict[str, int]]:
        return {
            e.insn_id: {"tda_hits": e.tda_hits, "vta_hits": e.vta_hits, "pd": e.pd}
            for e in self.entries
            if e.ever_used
        }
