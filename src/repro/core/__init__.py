"""The paper's contribution: Dynamic Line Protection and its comparators.

Public surface:

* :class:`DlpPolicy` — per-instruction protection distances + bypass;
* :class:`GlobalProtectionPolicy` — single-PD PDP emulation;
* :class:`StallBypassPolicy` — bypass-on-any-stall comparator;
* :class:`BaselinePolicy` — plain LRU;
* :func:`make_policy` — name-based factory used by the experiment runner;
* the building blocks (:class:`VictimTagArray`, :class:`PredictionTable`,
  :class:`SampleWindow`, the Figure 9 maths, the overhead model).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.baseline import BaselinePolicy
from repro.core.dlp import DlpPolicy
from repro.core.global_protection import GlobalProtectionPolicy
from repro.core.overhead import OverheadReport, compute_overhead
from repro.core.pdpt import PredictionTable
from repro.core.policy import CachePolicy, StallReason
from repro.core.protection import pd_increment, run_global_pd_update, run_pd_update
from repro.core.sampler import SampleWindow
from repro.core.stall_bypass import StallBypassPolicy
from repro.core.vta import VictimTagArray

POLICIES: Dict[str, Callable[..., CachePolicy]] = {
    "baseline": BaselinePolicy,
    "stall_bypass": StallBypassPolicy,
    "global_protection": GlobalProtectionPolicy,
    "dlp": DlpPolicy,
}


def make_policy(name: str, **kwargs: object) -> CachePolicy:
    """Instantiate a policy by its registry name.

    ``kwargs`` forward to the policy constructor (sampling period, VTA
    associativity, ... for the protection schemes).
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(POLICIES)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "BaselinePolicy",
    "StallBypassPolicy",
    "GlobalProtectionPolicy",
    "DlpPolicy",
    "CachePolicy",
    "StallReason",
    "VictimTagArray",
    "PredictionTable",
    "SampleWindow",
    "pd_increment",
    "run_pd_update",
    "run_global_pd_update",
    "compute_overhead",
    "OverheadReport",
    "POLICIES",
    "make_policy",
]
