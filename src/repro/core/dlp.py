"""Dynamic Line Protection — the paper's contribution (Section 4).

The policy composes the three structures of Figure 8:

* the TDA extension fields on every line (instruction ID + Protected
  Life), maintained on hits, allocations and set queries;
* the Victim Tag Array, fed by evictions and probed on misses;
* the Protection Distance Prediction Table, which accumulates per-
  instruction TDA/VTA hits and is recomputed by the Figure 9 flow at the
  end of every sampling period.

Protocol behaviour:

* every set query decrements the PL of all lines in the set (bypassed
  requests too, so protected sets drain and are eventually released);
* a hit credits the PDPT's TDA-hit counter of the *previous* instruction
  recorded on the line, then re-tags the line with the accessing
  instruction and rewrites its PL from that instruction's current PD;
* a miss probes the VTA and credits a hit to the instruction stored in
  the victim entry;
* victim selection is LRU over valid, unprotected lines; when none
  exists, the request is bypassed rather than stalled.

Constructor knobs exist for the ablation benches (sampling period, VTA
associativity, PL width, bypass on/off); defaults are the paper's.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.cache.replacement import protected_lru_victim
from repro.check.contracts import set_field_width
from repro.core.pdpt import PD_BITS, PredictionTable
from repro.core.policy import CachePolicy
from repro.core.protection import run_pd_update
from repro.core.sampler import SampleWindow
from repro.core.vta import VictimTagArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.l1d import L1DCache, MemAccess
    from repro.cache.line import CacheLine
    from repro.cache.tagarray import CacheSet


class DlpPolicy(CachePolicy):
    name = "dlp"

    def __init__(
        self,
        sample_limit: int = 200,
        insn_sample_limit: int = 100_000,
        vta_assoc: Optional[int] = None,
        pd_bits: int = PD_BITS,
        nasc: Optional[int] = None,
        bypass_enabled: bool = True,
    ) -> None:
        super().__init__()
        self._vta_assoc = vta_assoc
        self._nasc_override = nasc
        self.pd_bits = pd_bits
        self.bypass_enabled = bypass_enabled
        self.pdpt = PredictionTable(pd_bits=pd_bits)
        self.sampler = SampleWindow(sample_limit, insn_sample_limit)
        self.vta: Optional[VictimTagArray] = None
        self.nasc = 0
        self.pl_max = (1 << pd_bits) - 1
        # policy-level statistics
        self.protected_bypasses = 0
        self.pd_updates = {"increase": 0, "decrease": 0, "hold": 0}

    # -- lifecycle -------------------------------------------------------

    def attach(self, cache: "L1DCache") -> None:
        super().attach(cache)
        self.vta = VictimTagArray(cache.geometry, self._vta_assoc)
        # Nasc is the VTA associativity (Section 4.2, footnote 2: set to
        # the cache associativity in the paper's configuration).  An
        # explicit 0 is a valid ablation value (freeze all PD updates),
        # so only a missing override falls back to the VTA associativity.
        self.nasc = (
            self._nasc_override if self._nasc_override is not None else self.vta.assoc
        )
        if self.pd_bits != PD_BITS:
            # Ablation PL widths: widen (or narrow) the per-line Protected
            # Life contract to match (no-op unless REPRO_CHECK is set).
            for line in cache.tags.lines():
                set_field_width(line, "protected_life", self.pd_bits)

    def reset(self) -> None:
        # In-place PDPT reset: the base-class contract says statistics
        # survive reset(), and the sampler/VTA already honour it — the
        # PDPT's lifetime activity markers (and any ablation contract
        # widths installed on its entries) must survive too.
        self.pdpt.reset()
        self.sampler.reset()
        if self.vta is not None:
            self.vta.reset()

    # -- protocol hooks ---------------------------------------------------

    def on_set_query(self, cache_set: "CacheSet", access: "MemAccess") -> None:
        for line in cache_set.lines:
            if line.protected_life > 0:
                line.protected_life -= 1

    def on_hit(self, line: "CacheLine", access: "MemAccess", reserved: bool) -> None:
        if access.is_write:
            return
        if reserved:
            # Pending hit: reuse was captured by the in-flight line.
            # Attribute it to the instruction that allocated / last
            # touched the pending line, then hand the line over.
            self.pdpt.record_tda_hit(line.pending_insn_id)
            line.pending_insn_id = access.insn_id
            return
        self.pdpt.record_tda_hit(line.insn_id)
        line.insn_id = access.insn_id
        line.grant_protection(self.pdpt.pd(access.insn_id), self.pl_max)

    def on_miss(self, access: "MemAccess") -> None:
        if access.is_write:
            return
        assert self.vta is not None, "policy used before attach()"
        owner = self.vta.probe(access.block_addr)
        if owner is not None:
            self.pdpt.record_vta_hit(owner)

    def select_victim(
        self, cache_set: "CacheSet", access: "MemAccess"
    ) -> Optional["CacheLine"]:
        return protected_lru_victim(cache_set)

    def bypass_on_no_victim(self, access: "MemAccess") -> bool:
        if self.bypass_enabled:
            self.protected_bypasses += 1
            return True
        return False

    def on_allocate(self, line: "CacheLine", access: "MemAccess") -> None:
        line.grant_protection(self.pdpt.pd(access.insn_id), self.pl_max)

    def on_evict(self, line: "CacheLine") -> None:
        assert self.vta is not None, "policy used before attach()"
        self.vta.insert(line.block_addr, line.insn_id)

    def on_access_done(self, access: "MemAccess", outcome: enum.Enum) -> None:
        if self.sampler.tick_access():
            self._end_sample()

    def notify_instructions(self, count: int) -> None:
        if self.sampler.tick_instructions(count):
            self._end_sample()

    # -- internals ---------------------------------------------------------

    def _end_sample(self) -> None:
        result = run_pd_update(self.pdpt, self.nasc)
        self.pd_updates[result.path] += 1

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "protected_bypasses": self.protected_bypasses,
            "samples_completed": self.sampler.samples_completed,
            "vta_hits": self.vta.hits if self.vta else 0,
            "vta_inserts": self.vta.inserts if self.vta else 0,
        }
        for path, count in self.pd_updates.items():
            out[f"pd_{path}"] = count
        return out

    def pd_snapshot(self) -> Dict[int, Dict[str, int]]:
        """Current per-instruction PDPT contents (for reports/examples)."""
        return self.pdpt.snapshot()
