"""Sampling window (paper Section 4.1.4).

The sample counter counts L1D accesses; the PD update runs every
``access_limit`` accesses (the paper picks 200 empirically).  For Cache
Sufficient applications with few loads a window could last very long, so
a secondary cap on *executed instructions* closes the window early —
the paper notes the impact on CS applications is trivial either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SampleWindow:
    """Tracks progress through one sampling period."""

    access_limit: int = 200
    insn_limit: int = 100_000
    accesses: int = 0
    instructions: int = 0
    samples_completed: int = 0
    closed_by: dict = field(default_factory=lambda: {"accesses": 0, "instructions": 0})

    def __post_init__(self) -> None:
        if self.access_limit < 1:
            raise ValueError("sample access limit must be positive")
        if self.insn_limit < 1:
            raise ValueError("sample instruction limit must be positive")

    def tick_access(self) -> bool:
        """Count one cache access; True when the sample just completed."""
        self.accesses += 1
        if self.accesses > self.access_limit:
            raise RuntimeError(
                f"sampling window overshot: {self.accesses} accesses counted "
                f"against a limit of {self.access_limit}. A window close was "
                f"skipped (or the counter was tampered with), so PD updates "
                f"are no longer {self.access_limit}-access aligned."
            )
        if self.accesses >= self.access_limit:
            self._close("accesses")
            return True
        return False

    def tick_instructions(self, count: int) -> bool:
        """Count executed thread instructions; True when the cap closed
        the window (only meaningful if at least one access was seen —
        an empty window has nothing to recompute PDs from)."""
        self.instructions += count
        if self.instructions >= self.insn_limit and self.accesses > 0:
            self._close("instructions")
            return True
        return False

    def _close(self, reason: str) -> None:
        self.samples_completed += 1
        self.closed_by[reason] += 1
        self.accesses = 0
        self.instructions = 0

    def reset(self) -> None:
        self.accesses = 0
        self.instructions = 0
