"""Stall-Bypass comparator (paper Section 5.3).

"This scheme enables a bypass path when a stall is detected in the L1D
cache for any reason, such as no available MSHR entry, no reservable slot
in set, or a fully occupied miss queue."  It never protects lines and
never consults reuse information — which is exactly why it over-bypasses
on applications like SRAD and BT (Section 6.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.cache.replacement import lru_victim
from repro.core.policy import CachePolicy, StallReason

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.l1d import MemAccess
    from repro.cache.line import CacheLine
    from repro.cache.tagarray import CacheSet


class StallBypassPolicy(CachePolicy):
    name = "stall_bypass"

    def __init__(self) -> None:
        super().__init__()
        self.bypassed_by_reason: Dict[str, int] = {
            reason.value: 0 for reason in StallReason
        }

    def select_victim(
        self, cache_set: "CacheSet", access: "MemAccess"
    ) -> Optional["CacheLine"]:
        return lru_victim(cache_set)

    def bypass_on_no_victim(self, access: "MemAccess") -> bool:
        # "no reservable slot in set" is one of the stall reasons
        self.bypassed_by_reason[StallReason.NO_RESERVABLE_LINE.value] += 1
        return True

    def bypass_on_stall(self, reason: StallReason, access: "MemAccess") -> bool:
        self.bypassed_by_reason[reason.value] += 1
        return True

    def stats(self) -> Dict[str, float]:
        return {f"bypass_{k}": v for k, v in self.bypassed_by_reason.items()}
