"""Global-Protection comparator (paper Section 5.3).

An emulation of PDP [Duong et al., MICRO'12] on the GPU L1D: the same
VTA, the same sampling window and the same Figure 9 decision structure as
DLP, but with a *single* Protection Distance applied to every line —
"instead of an instruction-based PD like the left-most path in Figure 9,
this scheme computes a global PD for all cache entries."
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.cache.replacement import protected_lru_victim
from repro.check.contracts import BitField, hw_checked, set_field_width
from repro.core.pdpt import PD_BITS
from repro.core.policy import CachePolicy
from repro.core.protection import run_global_pd_update
from repro.core.sampler import SampleWindow
from repro.core.vta import VictimTagArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.l1d import L1DCache, MemAccess
    from repro.cache.line import CacheLine
    from repro.cache.tagarray import CacheSet


@hw_checked(global_pd=BitField(PD_BITS))
class GlobalProtectionPolicy(CachePolicy):
    name = "global_protection"

    def __init__(
        self,
        sample_limit: int = 200,
        insn_sample_limit: int = 100_000,
        vta_assoc: Optional[int] = None,
        pd_bits: int = PD_BITS,
        nasc: Optional[int] = None,
        bypass_enabled: bool = True,
    ) -> None:
        super().__init__()
        self._vta_assoc = vta_assoc
        self._nasc_override = nasc
        self.bypass_enabled = bypass_enabled
        self.pd_bits = pd_bits
        self.pl_max = (1 << pd_bits) - 1
        self.sampler = SampleWindow(sample_limit, insn_sample_limit)
        self.vta: Optional[VictimTagArray] = None
        self.nasc = 0
        if pd_bits != PD_BITS:
            set_field_width(self, "global_pd", pd_bits)
        self.global_pd = 0
        self.global_tda_hits = 0
        self.global_vta_hits = 0
        self.protected_bypasses = 0
        self.pd_updates = {"increase": 0, "decrease": 0, "hold": 0}

    def attach(self, cache: "L1DCache") -> None:
        super().attach(cache)
        self.vta = VictimTagArray(cache.geometry, self._vta_assoc)
        self.nasc = (
            self._nasc_override if self._nasc_override is not None else self.vta.assoc
        )
        if self.pd_bits != PD_BITS:
            # Non-default PD width: the per-line PL field must hold it too
            # (no-op unless REPRO_CHECK is set).
            for line in cache.tags.lines():
                set_field_width(line, "protected_life", self.pd_bits)

    def reset(self) -> None:
        self.sampler.reset()
        self.global_pd = 0
        self.global_tda_hits = 0
        self.global_vta_hits = 0
        if self.vta is not None:
            self.vta.reset()

    # -- protocol hooks ---------------------------------------------------

    def on_set_query(self, cache_set: "CacheSet", access: "MemAccess") -> None:
        for line in cache_set.lines:
            if line.protected_life > 0:
                line.protected_life -= 1

    def on_hit(self, line: "CacheLine", access: "MemAccess", reserved: bool) -> None:
        if access.is_write:
            return
        self.global_tda_hits += 1
        if not reserved:
            line.grant_protection(self.global_pd, self.pl_max)

    def on_miss(self, access: "MemAccess") -> None:
        if access.is_write:
            return
        assert self.vta is not None, "policy used before attach()"
        if self.vta.probe(access.block_addr) is not None:
            self.global_vta_hits += 1

    def select_victim(
        self, cache_set: "CacheSet", access: "MemAccess"
    ) -> Optional["CacheLine"]:
        return protected_lru_victim(cache_set)

    def bypass_on_no_victim(self, access: "MemAccess") -> bool:
        if self.bypass_enabled:
            self.protected_bypasses += 1
            return True
        return False

    def on_allocate(self, line: "CacheLine", access: "MemAccess") -> None:
        line.grant_protection(self.global_pd, self.pl_max)

    def on_evict(self, line: "CacheLine") -> None:
        assert self.vta is not None, "policy used before attach()"
        self.vta.insert(line.block_addr, line.insn_id)

    def on_access_done(self, access: "MemAccess", outcome: enum.Enum) -> None:
        if self.sampler.tick_access():
            self._end_sample()

    def notify_instructions(self, count: int) -> None:
        if self.sampler.tick_instructions(count):
            self._end_sample()

    def _end_sample(self) -> None:
        self.global_pd, path = run_global_pd_update(
            self.global_pd,
            self.pl_max,
            self.nasc,
            self.global_tda_hits,
            self.global_vta_hits,
        )
        self.pd_updates[path] += 1
        self.global_tda_hits = 0
        self.global_vta_hits = 0

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "protected_bypasses": self.protected_bypasses,
            "samples_completed": self.sampler.samples_completed,
            "global_pd": self.global_pd,
            "vta_hits": self.vta.hits if self.vta else 0,
        }
        for path, count in self.pd_updates.items():
            out[f"pd_{path}"] = count
        return out
