"""Protection Distance computation — the Figure 9 flow.

Two pieces:

* :func:`pd_increment` — the shift-based *step comparison* the paper uses
  instead of a divider: compare ``HitVTA`` against 4x, 2x, 1x and 1/2x
  ``HitTDA`` and shift ``Nasc`` accordingly, with the 4x case doubling as
  the over-protection cap.
* :func:`run_pd_update` — the whole sample-end flow: the global
  VTA-vs-TDA check chooses between the per-instruction increase path and
  the global decrease path (or neither), then hit counters are cleared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.pdpt import PredictionTable


def pd_increment(nasc: int, hit_vta: int, hit_tda: int) -> int:
    """Per-instruction PD increase: ``Nasc * step(HitVTA / HitTDA)``.

    Step comparison (Section 4.2): sequentially compare ``HitVTA`` with
    ``4*HitTDA``, ``2*HitTDA``, ``HitTDA`` and ``HitTDA/2``, shifting
    ``Nasc`` by the outcome.  The top rung caps the increment at
    ``4 * Nasc`` to prevent over-protection.

    An instruction with VTA hits but zero TDA hits takes the top rung:
    every observed reuse of its lines happened *after* eviction, which is
    exactly the thrashing case the scheme exists to fix.
    """
    if nasc < 0:
        raise ValueError(f"Nasc must be non-negative, got {nasc}")
    if hit_vta <= 0:
        return 0
    if hit_tda <= 0 or hit_vta >= 4 * hit_tda:
        return 4 * nasc
    if hit_vta >= 2 * hit_tda:
        return 2 * nasc
    if hit_vta >= hit_tda:
        return nasc
    if 2 * hit_vta >= hit_tda:  # HitVTA >= HitTDA / 2 without dividing
        return nasc >> 1
    return 0


@dataclass
class PdUpdateResult:
    """What a sample-end update did (for tests and traces)."""

    path: str  # "increase", "decrease" or "hold"
    global_tda_hits: int
    global_vta_hits: int
    adjustments: Dict[int, int]  # insn_id -> PD delta applied


def run_pd_update(table: PredictionTable, nasc: int) -> PdUpdateResult:
    """Apply the Figure 9 flow to a PDPT at the end of a sample.

    * global VTA hits > global TDA hits  -> per-PC increase path;
    * global VTA hits < 1/2 global TDA hits -> all PDs decrease by Nasc;
    * otherwise -> hold (protection level is about right).

    Hit counters are cleared afterwards in every case.
    """
    if nasc < 0:
        raise ValueError(f"Nasc must be non-negative, got {nasc}")
    g_tda = table.global_tda_hits
    g_vta = table.global_vta_hits
    adjustments: Dict[int, int] = {}

    if g_vta > g_tda:
        path = "increase"
        for entry in table.active_entries():
            delta = pd_increment(nasc, entry.vta_hits, entry.tda_hits)
            if delta:
                before = entry.pd
                table.adjust_pd(entry.insn_id, delta)
                adjustments[entry.insn_id] = entry.pd - before
    elif 2 * g_vta < g_tda:
        path = "decrease"
        for entry in table.entries:
            if entry.pd:
                before = entry.pd
                entry.pd = max(entry.pd - nasc, 0)
                adjustments[entry.insn_id] = entry.pd - before
    else:
        path = "hold"

    table.clear_hits()
    return PdUpdateResult(path, g_tda, g_vta, adjustments)


def run_global_pd_update(
    global_pd: int, pd_max: int, nasc: int, g_tda: int, g_vta: int
) -> Tuple[int, str]:
    """The Global-Protection variant (Section 5.3): one PD for the whole
    cache, adjusted from the program-level hit counts with the same step
    comparison and the same decrease rule.  Returns ``(new_pd, path)``."""
    if nasc < 0:
        raise ValueError(f"Nasc must be non-negative, got {nasc}")
    if g_vta > g_tda:
        delta = pd_increment(nasc, g_vta, g_tda)
        return min(global_pd + delta, pd_max), "increase"
    if 2 * g_vta < g_tda:
        return max(global_pd - nasc, 0), "decrease"
    return global_pd, "hold"
