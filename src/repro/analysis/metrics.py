"""Metric helpers shared by the figure drivers.

The paper reports geometric means over application groups (Fig. 10's
G.MEANS bars) and normalizes every quantity to the 16 KB baseline; the
helpers here implement both plus a simple functional cache model used by
the Fig. 4 miss-rate sweep.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cache.tagarray import CacheGeometry, TagArray
from repro.cache.line import LineState


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero/negative entries are invalid inputs here
    (IPC ratios and traffic ratios are strictly positive)."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError(f"geometric mean requires positive values, got {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every entry by the baseline entry (paper's normalization)."""
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError(f"baseline {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}


def safe_ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


class FunctionalCache:
    """Tag-only LRU cache for the Fig. 4 capacity sweep.

    Tracks the paper's *reuse-data miss rate*: compulsory misses (first
    touch of a line anywhere in the run) are excluded, because no cache
    size can avoid them (Section 3.2).
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.tags = TagArray(geometry)
        self._seen: set = set()
        self.reuse_accesses = 0
        self.reuse_misses = 0
        self.compulsory = 0
        self.accesses = 0

    def access(self, block_addr: int) -> bool:
        """Returns True on hit."""
        self.accesses += 1
        first_touch = block_addr not in self._seen
        if first_touch:
            self._seen.add(block_addr)
            self.compulsory += 1
        else:
            self.reuse_accesses += 1
        line = self.tags.probe(block_addr)
        if line is not None and line.state is LineState.VALID:
            self.tags.touch(line)
            return True
        if not first_touch:
            self.reuse_misses += 1
        # install with plain LRU
        cache_set = self.tags.set_for(block_addr)
        victim = cache_set.find_invalid()
        if victim is None:
            victim = min(
                (l for l in cache_set.lines if l.state is LineState.VALID),
                key=lambda l: l.lru_stamp,
            )
        victim.invalidate()
        victim.reserve(self.geometry.tag(block_addr), block_addr, 0, self.tags.next_stamp())
        victim.fill(self.tags.next_stamp())
        return False

    @property
    def reuse_miss_rate(self) -> float:
        return safe_ratio(self.reuse_misses, self.reuse_accesses)

    @property
    def hit_rate(self) -> float:
        return safe_ratio(self.accesses - self.reuse_misses - self.compulsory, self.accesses)


def merge_functional(caches: Sequence[FunctionalCache]) -> Dict[str, float]:
    """Aggregate per-SM functional caches into run-level counters."""
    reuse_accesses = sum(c.reuse_accesses for c in caches)
    reuse_misses = sum(c.reuse_misses for c in caches)
    compulsory = sum(c.compulsory for c in caches)
    accesses = sum(c.accesses for c in caches)
    return {
        "accesses": accesses,
        "compulsory": compulsory,
        "reuse_accesses": reuse_accesses,
        "reuse_misses": reuse_misses,
        "reuse_miss_rate": safe_ratio(reuse_misses, reuse_accesses),
    }
