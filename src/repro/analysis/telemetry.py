"""PD-evolution telemetry: watch the Figure 9 dynamics at runtime.

The DLP mechanism is a feedback loop — per-instruction Protection
Distances rise while the VTA reports lost reuse and decay once the TDA
captures it.  :class:`PdTracker` hooks a :class:`~repro.core.dlp.DlpPolicy`
(or :class:`~repro.core.global_protection.GlobalProtectionPolicy`) and
records a snapshot at every sample boundary, so the convergence
behaviour can be inspected, asserted on, or rendered:

    policy = make_policy("dlp")
    tracker = PdTracker.attach_to(policy)
    ... run the simulation ...
    print(tracker.render())

or, scoped (detaches even if the run raises)::

    with PdTracker.attached(policy) as tracker:
        ... run the simulation ...
    print(tracker.render())

Attachment is by wrapping the policy's ``_end_sample`` — no simulator
support needed, and detaching restores the original method.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.analysis.report import ascii_table


@dataclass
class PdSample:
    """State captured at one sample boundary (after the PD update)."""

    index: int
    path: str                      # which Fig. 9 branch ran
    global_tda_hits: int
    global_vta_hits: int
    pds: Dict[int, int]            # insn_id -> PD (active entries only)

    @property
    def max_pd(self) -> int:
        return max(self.pds.values(), default=0)

    @property
    def mean_pd(self) -> float:
        return sum(self.pds.values()) / len(self.pds) if self.pds else 0.0


@dataclass
class PdTracker:
    """Recorded PD trajectory of one policy instance."""

    samples: List[PdSample] = field(default_factory=list)
    _policy: object = None
    _original_end_sample: object = None

    # -- attachment ------------------------------------------------------

    @classmethod
    def attach_to(cls, policy) -> "PdTracker":
        """Wrap ``policy._end_sample`` to record a snapshot per sample."""
        if not hasattr(policy, "_end_sample"):
            raise TypeError(
                f"{type(policy).__name__} has no sampling to track"
            )
        tracker = cls()
        tracker._policy = policy
        tracker._original_end_sample = policy._end_sample

        def wrapped() -> None:
            pre_tda, pre_vta = tracker._hit_counts(policy)
            tracker._original_end_sample()
            tracker._record(policy, pre_tda, pre_vta)

        policy._end_sample = wrapped
        return tracker

    @classmethod
    @contextmanager
    def attached(cls, policy) -> Iterator["PdTracker"]:
        """Context-manager form of :meth:`attach_to`: the tracker is
        detached on exit even when the simulated run raises, so a failed
        experiment never leaves a wrapped ``_end_sample`` behind."""
        tracker = cls.attach_to(policy)
        try:
            yield tracker
        finally:
            tracker.detach()

    def detach(self) -> None:
        if self._policy is not None and self._original_end_sample is not None:
            self._policy._end_sample = self._original_end_sample
            self._policy = None

    # -- recording -------------------------------------------------------

    @staticmethod
    def _hit_counts(policy):
        if hasattr(policy, "pdpt"):
            return policy.pdpt.global_tda_hits, policy.pdpt.global_vta_hits
        return policy.global_tda_hits, policy.global_vta_hits

    def _record(self, policy, pre_tda: int, pre_vta: int) -> None:
        if hasattr(policy, "pdpt"):
            pds = {
                e.insn_id: e.pd for e in policy.pdpt.entries if e.ever_used
            }
        else:
            pds = {0: policy.global_pd}
        if pre_vta > pre_tda:
            path = "increase"
        elif 2 * pre_vta < pre_tda:
            path = "decrease"
        else:
            path = "hold"
        self.samples.append(
            PdSample(len(self.samples), path, pre_tda, pre_vta, pds)
        )

    # -- queries ------------------------------------------------------------

    def trajectory(self, insn_id: int) -> List[int]:
        """PD values of one instruction across all samples."""
        return [s.pds.get(insn_id, 0) for s in self.samples]

    def path_counts(self) -> Dict[str, int]:
        out = {"increase": 0, "decrease": 0, "hold": 0}
        for s in self.samples:
            out[s.path] += 1
        return out

    def converged_pds(self, tail: int = 5) -> Dict[int, float]:
        """Mean PD per instruction over the last ``tail`` samples."""
        recent = self.samples[-tail:]
        if not recent:
            return {}
        ids = set().union(*(s.pds.keys() for s in recent))
        return {
            i: sum(s.pds.get(i, 0) for s in recent) / len(recent) for i in ids
        }

    # -- rendering ------------------------------------------------------------

    def render(self, max_rows: int = 20) -> str:
        rows = []
        step = max(1, len(self.samples) // max_rows)
        for s in self.samples[::step]:
            rows.append((
                s.index, s.path, s.global_tda_hits, s.global_vta_hits,
                f"{s.mean_pd:.1f}", s.max_pd,
            ))
        return ascii_table(
            ["sample", "path", "TDA hits", "VTA hits", "mean PD", "max PD"],
            rows,
            title="PD evolution",
        )


def render_latency_histogram(title: str, snapshot: Dict,
                             bar_width: int = 30) -> str:
    """Render one service latency histogram as an ascii table.

    ``snapshot`` is the Prometheus-style document produced by
    :meth:`repro.serve.metrics.LatencyHistogram.snapshot` (cumulative
    bucket counts keyed by upper bound); rendered here per-bucket with
    a proportional bar, the way ``repro submit metrics`` shows it.
    Empty buckets are folded away so a sparse histogram stays short.
    """
    buckets = snapshot.get("buckets", {})
    total = snapshot.get("count", 0)
    rows: List[tuple] = []
    previous = 0
    # JSON round-trips sort keys lexicographically; recover numeric
    # bound order (with +Inf last) before un-cumulating the counts.
    ordered = sorted(
        buckets.items(),
        key=lambda kv: float("inf") if kv[0] == "+Inf" else float(kv[0]),
    )
    for bound, cumulative in ordered:
        in_bucket = cumulative - previous
        previous = cumulative
        if in_bucket == 0:
            continue
        bar = "#" * max(1, round(bar_width * in_bucket / total)) \
            if total else ""
        rows.append((f"<= {bound}s", str(in_bucket), bar))
    if not rows:
        rows.append(("(empty)", "0", ""))
    mean = snapshot.get("sum", 0.0) / total if total else 0.0
    return ascii_table(
        ["bucket", "count", ""],
        rows,
        title=f"{title}: n={total}, mean={mean * 1000:.2f} ms",
    )
