"""Cache Sufficient / Cache Insufficient classification (Section 3.2).

The paper classifies an application by its *memory access ratio* —
memory data requests per executed thread instruction — with an empirical
threshold of 1 %: below it, memory barely moves IPC (Cache Sufficient);
above it, the L1D matters (Cache Insufficient).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads import ALL_APPS, make_workload

MEMORY_ACCESS_RATIO_THRESHOLD = 0.01


@dataclass(frozen=True)
class Classification:
    abbr: str
    mem_access_ratio: float
    predicted_type: str   # from the ratio + threshold
    paper_type: str       # Table 2 ground truth

    @property
    def matches_paper(self) -> bool:
        return self.predicted_type == self.paper_type


def classify_ratio(ratio: float, threshold: float = MEMORY_ACCESS_RATIO_THRESHOLD) -> str:
    return "CI" if ratio >= threshold else "CS"


def classify_workload(abbr: str, scale: float = 1.0) -> Classification:
    """Compute a workload's ratio from its static traces and classify."""
    wl = make_workload(abbr, scale)
    ratio = wl.static_stats()["mem_access_ratio"]
    return Classification(
        abbr=abbr,
        mem_access_ratio=ratio,
        predicted_type=classify_ratio(ratio),
        paper_type=wl.meta.paper_type,
    )


def classify_all(scale: float = 1.0) -> List[Classification]:
    """Fig. 6's data: every app's ratio, in the paper's sorted intent
    (returned in registry order; callers may sort by ratio)."""
    return [classify_workload(a, scale) for a in ALL_APPS]


def ratios_by_app(scale: float = 1.0) -> Dict[str, float]:
    return {c.abbr: c.mem_access_ratio for c in classify_all(scale)}
