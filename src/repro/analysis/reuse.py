"""Reuse-distance profiling (paper Section 3.1, Figs. 2, 3 and 7).

The paper defines a reuse distance as "the number of other memory
accesses to a cache set between two accesses to the same cache line
within that set", counted as in its Figure 2: the access sequence
A0 A1 A2 A0 within one set gives A0 a RD of 3 — i.e. the per-set access
counter difference between the two touches.  Under LRU, a re-reference
hits iff its RD does not exceed the associativity.

RDs depend only on the access stream and the set mapping, never on the
associativity — which is what lets Fig. 3 characterise applications
independent of cache capacity.

Attribution: a reuse is credited to the PC of the access that *brought
in or last touched* the line (the same previous-toucher convention the
DLP hardware uses for its hit counters), so the per-PC RDDs of Fig. 7
line up with the PDs the mechanism would assign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.tagarray import CacheGeometry

#: The paper's four RD ranges (Fig. 3 legend).
RD_RANGES: Tuple[Tuple[int, int], ...] = ((1, 4), (5, 8), (9, 64), (65, 1 << 62))
RD_LABELS = ("RD 1~4", "RD 5~8", "RD 9~64", "RD >65")


def bucket_of(rd: int) -> int:
    """Index of the Fig. 3 range containing ``rd``."""
    if rd <= 4:
        return 0
    if rd <= 8:
        return 1
    if rd <= 64:
        return 2
    return 3


@dataclass
class RddHistogram:
    """Counts per RD range, plus helpers to express them as fractions."""

    counts: List[int] = field(default_factory=lambda: [0, 0, 0, 0])

    def add(self, rd: int) -> None:
        self.counts[bucket_of(rd)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fractions(self) -> List[float]:
        t = self.total
        if t == 0:
            return [0.0, 0.0, 0.0, 0.0]
        return [c / t for c in self.counts]

    def merge(self, other: "RddHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c


class ReuseProfiler:
    """Streams (block address, pc) observations, producing RDDs.

    One profiler models one L1D's access stream (per-SM); merge the
    histograms to aggregate a whole run.
    """

    def __init__(self, geometry: Optional[CacheGeometry] = None):
        # Only the set count / index function matter for RDs.
        self.geometry = geometry or CacheGeometry(num_sets=32, assoc=4)
        nsets = self.geometry.num_sets
        self._set_counter = [0] * nsets
        # per set: block -> (counter at last touch, pc of last toucher)
        self._last: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(nsets)]
        self.overall = RddHistogram()
        self.per_pc: Dict[int, RddHistogram] = {}
        self.compulsory = 0
        self.reuses = 0
        self.accesses = 0

    def observe(self, block_addr: int, pc: int = 0) -> Optional[int]:
        """Record one access; returns the RD if this was a reuse."""
        self.accesses += 1
        set_idx = self.geometry.set_index(block_addr)
        self._set_counter[set_idx] += 1
        counter = self._set_counter[set_idx]
        last = self._last[set_idx]
        prev = last.get(block_addr)
        last[block_addr] = (counter, pc)
        if prev is None:
            self.compulsory += 1
            return None
        prev_counter, prev_pc = prev
        rd = counter - prev_counter
        self.reuses += 1
        self.overall.add(rd)
        hist = self.per_pc.get(prev_pc)
        if hist is None:
            hist = self.per_pc[prev_pc] = RddHistogram()
        hist.add(rd)
        return rd

    # -- reporting ---------------------------------------------------------

    def overall_fractions(self) -> List[float]:
        return self.overall.fractions()

    def pc_fractions(self) -> Dict[int, List[float]]:
        return {pc: h.fractions() for pc, h in self.per_pc.items()}

    def merge(self, other: "ReuseProfiler") -> None:
        self.overall.merge(other.overall)
        for pc, hist in other.per_pc.items():
            mine = self.per_pc.get(pc)
            if mine is None:
                self.per_pc[pc] = RddHistogram(list(hist.counts))
            else:
                mine.merge(hist)
        self.compulsory += other.compulsory
        self.reuses += other.reuses
        self.accesses += other.accesses


def rd_of_sequence(blocks, geometry: Optional[CacheGeometry] = None) -> List[Optional[int]]:
    """RDs of each access in a short sequence (the Fig. 2 worked example).

    >>> rd_of_sequence([0, 1, 2, 0], CacheGeometry(num_sets=1, assoc=2))
    [None, None, None, 3]
    """
    profiler = ReuseProfiler(geometry)
    return [profiler.observe(b) for b in blocks]
