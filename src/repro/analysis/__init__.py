"""Analysis layer: reuse-distance profiling, metrics, CS/CI classing,
ASCII table/figure rendering."""

from repro.analysis.classify import (
    MEMORY_ACCESS_RATIO_THRESHOLD,
    Classification,
    classify_all,
    classify_ratio,
    classify_workload,
    ratios_by_app,
)
from repro.analysis.metrics import (
    FunctionalCache,
    geometric_mean,
    merge_functional,
    normalize,
    safe_ratio,
)
from repro.analysis.report import (
    ascii_table,
    grouped_bars,
    normalized_summary,
    stacked_percent_rows,
)
from repro.analysis.reuse import (
    RD_LABELS,
    RD_RANGES,
    RddHistogram,
    ReuseProfiler,
    bucket_of,
    rd_of_sequence,
)
from repro.analysis.telemetry import PdSample, PdTracker

__all__ = [
    "ReuseProfiler",
    "RddHistogram",
    "RD_RANGES",
    "RD_LABELS",
    "bucket_of",
    "rd_of_sequence",
    "geometric_mean",
    "normalize",
    "safe_ratio",
    "FunctionalCache",
    "merge_functional",
    "classify_all",
    "classify_ratio",
    "classify_workload",
    "ratios_by_app",
    "Classification",
    "MEMORY_ACCESS_RATIO_THRESHOLD",
    "ascii_table",
    "grouped_bars",
    "stacked_percent_rows",
    "normalized_summary",
    "PdTracker",
    "PdSample",
]
