"""ASCII rendering of the paper's tables and figures.

The benchmark harness prints each reproduced table/figure as text: plain
tables for Tables 1/2, grouped-bar renderings for the normalized-metric
figures, and stacked-percentage rows for the RDD figures.  Keeping the
renderers here (rather than inline in the benches) lets tests assert on
their structure.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def grouped_bars(
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 40,
    fmt: str = "{:.2f}",
) -> str:
    """One text block per label with a bar per series — the layout of the
    paper's grouped-bar figures (Figs. 5, 10-13)."""
    max_value = max(
        (v for vals in series.values() for v in vals if v == v), default=1.0
    )
    scale = width / max_value if max_value > 0 else 1.0
    name_w = max(len(n) for n in series)
    lines = [title] if title else []
    for i, label in enumerate(labels):
        lines.append(label)
        for name, vals in series.items():
            v = vals[i]
            bar = "#" * max(0, int(round(v * scale)))
            lines.append(f"  {name.ljust(name_w)} |{bar} " + fmt.format(v))
    return "\n".join(lines)


def stacked_percent_rows(
    labels: Sequence[str],
    fractions: Sequence[Sequence[float]],
    range_labels: Sequence[str],
    title: str = "",
) -> str:
    """Stacked-percentage rows (the RDD figures 3 and 7)."""
    lines = [title] if title else []
    header = "app".ljust(8) + "".join(l.rjust(10) for l in range_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for label, fracs in zip(labels, fractions):
        row = str(label).ljust(8) + "".join(
            f"{100 * f:9.1f}%" for f in fracs
        )
        lines.append(row)
    return "\n".join(lines)


def normalized_summary(
    per_app: Mapping[str, Mapping[str, float]],
    schemes: Sequence[str],
    group_means: Mapping[str, Mapping[str, float]] | None = None,
) -> str:
    """Tabular normalized-metric view: one row per app, one column per
    scheme, with optional G.MEANS rows per group."""
    headers = ["app"] + list(schemes)
    rows: List[List[str]] = []
    for app, values in per_app.items():
        rows.append([app] + [f"{values[s]:.3f}" for s in schemes])
    if group_means:
        for group, values in group_means.items():
            rows.append([f"G.MEAN {group}"] + [f"{values[s]:.3f}" for s in schemes])
    return ascii_table(headers, rows)
