"""Deterministic zipfian request mixes for the loadtest harness.

A mix is a *population* of distinct cells (each a valid ``POST /jobs``
body) plus a *schedule*: which population member each request hits and
whether it takes the tier-0 predict path.  Popularity over the
population is zipfian — rank 0 is requested far more often than the
tail — so a run naturally exercises all three serving tiers: the head
ranks coalesce while cold and then hit the store warm, the tail stays
cold, and a configurable fraction is answered analytically.

Everything derives from :class:`~repro.utils.rng.DeterministicRng`
seeded by the mix seed, so two runs of the same config issue the
byte-identical request sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.serve.protocol import cell_request
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class MixConfig:
    """Shape of the synthetic traffic."""

    #: Number of distinct cells; popularity rank == population index.
    population: int = 24
    zipf_exponent: float = 1.1
    #: Fraction of requests submitted with ``predict: true`` (tier-0).
    predict_fraction: float = 0.0
    apps: Tuple[str, ...] = ("MM", "BFS")
    schemes: Tuple[str, ...] = ("baseline", "dlp")
    sms: int = 1
    scale: float = 0.1
    seed: int = 0


def build_population(mix: MixConfig) -> List[Dict[str, Any]]:
    """The distinct cells, as submit-ready job bodies (rank order).

    Each member varies the workload seed, so every rank is a distinct
    content address — a member is "hot" only because the zipfian
    schedule keeps requesting it, exactly like production traffic.
    """
    bodies: List[Dict[str, Any]] = []
    for rank in range(mix.population):
        app = mix.apps[rank % len(mix.apps)]
        scheme = mix.schemes[(rank // len(mix.apps)) % len(mix.schemes)]
        bodies.append(cell_request(
            app, scheme, sms=mix.sms, scale=mix.scale,
            seed=mix.seed * 100003 + rank,
        ))
    return bodies


def build_schedule(mix: MixConfig,
                   total_requests: int) -> List[Tuple[int, bool]]:
    """Per-request plan: (population rank, predict?) for each slot."""
    rng = DeterministicRng("loadtest-mix", salt=mix.seed)
    ranks = rng.zipf_indices(mix.population, total_requests,
                             exponent=mix.zipf_exponent)
    draws = rng.random(total_requests)
    return [
        (int(rank), bool(draw < mix.predict_fraction))
        for rank, draw in zip(ranks, draws)
    ]
