"""Asyncio HTTP client for the simulation service.

The blocking :class:`repro.serve.client.ServeClient` holds one thread
per caller; a load test needs thousands of concurrent clients, so this
module speaks the same minimal HTTP/1.1 (``Connection: close``, JSON
bodies) directly over ``asyncio.open_connection``.

Retry semantics mirror the blocking client: exponential backoff with
full jitter for transport failures, and ``429 Too Many Requests``
honours the server's fractional ``Retry-After`` hint.  An optional
shared semaphore bounds *concurrent connections* (not in-flight
logical requests), so a thousand pollers cannot exhaust the listen
backlog or the process's file descriptors.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.utils.rng import DeterministicRng


class LoadClientError(RuntimeError):
    """Transport failure that survived every retry."""


class AsyncServeClient:
    """One logical client; open a fresh connection per request."""

    def __init__(self, host: str, port: int, timeout: float = 120.0,
                 retries: int = 6, backoff_base: float = 0.2,
                 backoff_cap: float = 2.0,
                 rng: Optional[DeterministicRng] = None,
                 semaphore: Optional[asyncio.Semaphore] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None \
            else DeterministicRng("loadtest-client-backoff")
        self._sem = semaphore
        #: Telemetry: 429 responses observed (before retrying) and
        #: transport errors absorbed by retries.
        self.throttled = 0
        self.transport_errors = 0

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None,
                      ) -> Tuple[int, Any]:
        """One logical request; returns (final status, decoded body)."""
        attempt = 0
        while True:
            try:
                status, decoded, retry_after = \
                    await self._roundtrip(method, path, body)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                if attempt >= self.retries:
                    raise LoadClientError(
                        f"{method} {path} failed after "
                        f"{attempt + 1} attempts: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                self.transport_errors += 1
                delay = self._backoff(attempt, None)
            else:
                if status != 429:
                    return status, decoded
                self.throttled += 1
                if attempt >= self.retries:
                    return status, decoded
                delay = self._backoff(attempt, retry_after)
            attempt += 1
            await asyncio.sleep(delay)

    async def _roundtrip(self, method: str, path: str,
                         body: Optional[Dict[str, Any]],
                         ) -> Tuple[int, Any, Optional[float]]:
        if self._sem is not None:
            async with self._sem:
                return await asyncio.wait_for(
                    self._exchange(method, path, body), self.timeout)
        return await asyncio.wait_for(
            self._exchange(method, path, body), self.timeout)

    async def _exchange(self, method: str, path: str,
                        body: Optional[Dict[str, Any]],
                        ) -> Tuple[int, Any, Optional[float]]:
        """One wire round trip, framed by ``Content-Length``.

        Deliberately NOT framed by EOF: the self-hosted harness runs
        client, server and the scheduler's process pool in one process,
        and a worker forked while this connection is in flight inherits
        its fd — the server's close then never reaches FIN, so a
        ``read()``-to-EOF client hangs until its timeout even though
        the full response arrived.  Reading exactly the advertised body
        length sidesteps the pinned socket entirely.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else b""
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
            raw_head = await reader.readuntil(b"\r\n\r\n")
            status, headers, retry_after = self._parse_head(raw_head)
            length_text = headers.get("content-length")
            if length_text is None:
                raw_body = await reader.read(-1)      # EOF-framed fallback
            else:
                try:
                    length = int(length_text)
                except ValueError:
                    raise OSError(
                        f"bad Content-Length: {length_text!r}") from None
                raw_body = await reader.readexactly(length) if length \
                    else b""
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return status, self._decode(headers, raw_body), retry_after

    @staticmethod
    def _parse_head(raw: bytes) -> Tuple[int, Dict[str, str],
                                         Optional[float]]:
        """Status line + headers + parsed ``Retry-After`` hint."""
        lines = raw.decode("ascii", "replace").split("\r\n")
        parts = lines[0].split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise OSError(f"malformed response line: {lines[0]!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        retry_after: Optional[float] = None
        raw_hint = headers.get("retry-after")
        if raw_hint is not None:
            try:
                retry_after = float(raw_hint)
            except ValueError:
                pass
        return status, headers, retry_after

    @staticmethod
    def _decode(headers: Dict[str, str], body: bytes) -> Any:
        decoded: Any = body.decode("utf-8", "replace")
        if "json" in headers.get("content-type", ""):
            try:
                decoded = json.loads(decoded) if decoded else None
            except ValueError:
                pass    # surface the raw text; callers check status
        return decoded

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        if retry_after is not None:
            return min(self.backoff_cap, max(0.0, retry_after))
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return float(self._rng.random()) * ceiling
