"""The loadtest driver: N concurrent clients, SLO-gated report.

``run_loadtest`` either targets an already-running service
(``host``/``port``) or self-hosts a :class:`ClusterScheduler` behind a
:class:`~repro.serve.server.ServerThread` — the latter is what
``repro loadtest``, the benchmark and the CI smoke job use, so one
process exercises the full stack: HTTP framing, admission control,
sharded fair queueing, process workers and the content-addressed
store.

Each client coroutine walks its slice of the deterministic zipfian
schedule: submit (with retry/backoff, honouring 429 Retry-After), poll
to completion with exponential poll backoff, record the end-to-end
latency.  Client start times ramp linearly over ``ramp_seconds`` and a
shared semaphore bounds concurrent connections, so "1000 clients" is a
sustained closed-loop load rather than a single connect storm.

Chaos option: ``kill_worker_after=N`` SIGKILLs one worker process
after N completed requests (self-hosted runs only) — the SLO gate then
doubles as a recovery test, since every request must still complete
via the scheduler's requeue-once path.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.loadtest.client import AsyncServeClient
from repro.loadtest.mix import MixConfig, build_population, build_schedule
from repro.serve.cluster import ClusterScheduler
from repro.serve.jobs import TERMINAL_STATES
from repro.utils import wallclock
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class SloConfig:
    """Service-level objectives the report is gated on (None = skip)."""

    p99_s: Optional[float] = None
    #: Floor on server-side ``cells.coalesced / cells.requested``.
    min_coalescing_rate: Optional[float] = None
    #: Ceiling on 429 responses per logical request (retries included).
    max_throttled_rate: Optional[float] = None
    max_failures: int = 0


@dataclass(frozen=True)
class LoadTestConfig:
    clients: int = 100
    requests_per_client: int = 1
    mix: MixConfig = MixConfig()
    slo: SloConfig = SloConfig()
    #: Self-hosted cluster shape (ignored when host/port target an
    #: external service).
    workers: int = 2
    store: Optional[str] = None
    engine: str = "reference"
    max_queued: int = 0
    rate: Optional[float] = None
    burst: Optional[float] = None
    #: External target; both set => no server is started.
    host: Optional[str] = None
    port: Optional[int] = None
    #: Client behaviour.
    retries: int = 8
    backoff_base: float = 0.1
    backoff_cap: float = 1.0
    ramp_seconds: float = 0.5
    max_connections: int = 256
    request_timeout: float = 120.0
    poll_initial: float = 0.05
    poll_factor: float = 1.5
    poll_max: float = 0.5
    #: Chaos: SIGKILL one worker after this many completed requests.
    kill_worker_after: Optional[int] = None


@dataclass
class LoadTestReport:
    """Everything the CLI prints, the benchmark commits and CI greps."""

    clients: int
    requests: int
    workers: int
    completed: int
    failed: int
    failures: List[str]
    throttled_responses: int
    transport_retries: int
    wall_s: float
    throughput_rps: float
    #: Latency percentiles; ``None`` when no request completed (an
    #: empty sample has no percentile — see :func:`percentile`).
    p50_s: Optional[float]
    p95_s: Optional[float]
    p99_s: Optional[float]
    max_s: Optional[float]
    coalescing_rate: float
    store_hit_rate: float
    hot_rate: float
    predict_answers: int
    cells_requeued: int
    worker_restarts: int
    worker_killed: bool
    cells: Dict[str, Any] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    passed: bool = True

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "clients": self.clients,
            "requests": self.requests,
            "workers": self.workers,
            "completed": self.completed,
            "failed": self.failed,
            "throttled_responses": self.throttled_responses,
            "transport_retries": self.transport_retries,
            "wall_s": round(self.wall_s, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_s": {
                "p50": None if self.p50_s is None else round(self.p50_s, 4),
                "p95": None if self.p95_s is None else round(self.p95_s, 4),
                "p99": None if self.p99_s is None else round(self.p99_s, 4),
                "max": None if self.max_s is None else round(self.max_s, 4),
            },
            "coalescing_rate": round(self.coalescing_rate, 4),
            "store_hit_rate": round(self.store_hit_rate, 4),
            "hot_rate": round(self.hot_rate, 4),
            "predict_answers": self.predict_answers,
            "cells_requeued": self.cells_requeued,
            "worker_restarts": self.worker_restarts,
            "worker_killed": self.worker_killed,
            "cells": dict(self.cells),
            "violations": list(self.violations),
            "passed": self.passed,
        }
        if self.failures:
            doc["failure_samples"] = self.failures[:10]
        return doc


def percentile(sorted_values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over pre-sorted values (q in [0, 1]).

    An empty sample has no percentile: returns ``None`` rather than a
    fabricated 0.0 (which once let an all-failed run sail under any
    p99 SLO).
    """
    if not sorted_values:
        return None
    idx = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(idx, len(sorted_values) - 1)]


def evaluate_slos(report: LoadTestReport, slo: SloConfig) -> List[str]:
    violations = []
    if report.requests > 0 and report.completed == 0:
        violations.append(
            f"no requests completed (0 of {report.requests})"
        )
    if report.failed > slo.max_failures:
        violations.append(
            f"failures {report.failed} > allowed {slo.max_failures}"
        )
    if slo.p99_s is not None and report.p99_s is not None \
            and report.p99_s > slo.p99_s:
        violations.append(
            f"p99 latency {report.p99_s:.3f}s > SLO {slo.p99_s:g}s"
        )
    if slo.min_coalescing_rate is not None \
            and report.coalescing_rate < slo.min_coalescing_rate:
        violations.append(
            f"coalescing rate {report.coalescing_rate:.3f} < "
            f"SLO {slo.min_coalescing_rate:g}"
        )
    if slo.max_throttled_rate is not None and report.requests > 0:
        rate = report.throttled_responses / report.requests
        if rate > slo.max_throttled_rate:
            violations.append(
                f"429 rate {rate:.3f} > SLO {slo.max_throttled_rate:g}"
            )
    return violations


def run_loadtest(config: LoadTestConfig) -> LoadTestReport:
    """Execute one load test; self-hosts a cluster unless targeted."""
    if config.host is not None and config.port is not None:
        return asyncio.run(
            _drive(config, config.host, config.port, scheduler=None))

    from repro.serve.server import ServerThread

    server = ServerThread(
        workers=config.workers,
        store=config.store,
        scheduler_cls=ClusterScheduler,
        engine=config.engine,
        max_queued=config.max_queued,
        rate=config.rate,
        burst=config.burst,
    )
    with server:
        assert server.port is not None
        return asyncio.run(
            _drive(config, "127.0.0.1", server.port,
                   scheduler=server.scheduler))


def _kill_one_worker(scheduler: Any) -> bool:
    """SIGKILL the lowest-pid live worker process (chaos hook)."""
    pool = getattr(scheduler, "_pool", None)
    processes = getattr(pool, "_processes", None)
    if not processes:
        return False
    pid = sorted(processes)[0]
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        return False
    return True


async def _wait_done(client: AsyncServeClient, job_id: str,
                     config: LoadTestConfig) -> Dict[str, Any]:
    deadline = wallclock.monotonic() + config.request_timeout
    poll = config.poll_initial
    while True:
        status, doc = await client.request("GET", f"/jobs/{job_id}")
        if status == 200 and isinstance(doc, dict) \
                and doc.get("state") in TERMINAL_STATES:
            return doc
        if wallclock.monotonic() >= deadline:
            state = doc.get("state") if isinstance(doc, dict) else status
            return {"state": "timeout", "last": state}
        await asyncio.sleep(poll)
        poll = min(config.poll_max, poll * config.poll_factor)


async def _drive(config: LoadTestConfig, host: str, port: int,
                 scheduler: Any) -> LoadTestReport:
    total = config.clients * config.requests_per_client
    population = build_population(config.mix)
    schedule = build_schedule(config.mix, total)
    semaphore = asyncio.Semaphore(max(1, config.max_connections))
    latencies: List[float] = []
    failures: List[str] = []
    clients: List[AsyncServeClient] = []
    state = {"completed": 0, "killed": False}

    async def run_client(index: int) -> None:
        client = AsyncServeClient(
            host, port, timeout=config.request_timeout,
            retries=config.retries, backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
            rng=DeterministicRng("loadtest-backoff", salt=index),
            semaphore=semaphore,
        )
        clients.append(client)
        if config.ramp_seconds > 0 and config.clients > 1:
            await asyncio.sleep(
                config.ramp_seconds * index / (config.clients - 1))
        for turn in range(config.requests_per_client):
            slot = index * config.requests_per_client + turn
            rank, predict = schedule[slot]
            body = dict(population[rank])
            body["client"] = f"client-{index:04d}"
            if predict:
                body["predict"] = True
            t0 = wallclock.perf()
            try:
                status, doc = await client.request("POST", "/jobs", body)
                if status != 200 or not isinstance(doc, dict):
                    failures.append(f"submit -> {status}: {doc}")
                    continue
                final = await _wait_done(client, doc["id"], config)
                if final.get("state") != "done":
                    failures.append(
                        f"job {doc['id']} ended {final.get('state')!r}")
                    continue
            except Exception as exc:
                failures.append(f"{type(exc).__name__}: {exc}")
                continue
            latencies.append(wallclock.perf() - t0)
            state["completed"] += 1
            if config.kill_worker_after is not None \
                    and not state["killed"] \
                    and scheduler is not None \
                    and state["completed"] >= config.kill_worker_after:
                state["killed"] = _kill_one_worker(scheduler)

    t_start = wallclock.perf()
    await asyncio.gather(*(run_client(i) for i in range(config.clients)))
    wall = max(1e-9, wallclock.perf() - t_start)

    scrape = AsyncServeClient(host, port, timeout=30.0, retries=3)
    _status, snapshot = await scrape.request("GET", "/metrics")
    cells: Dict[str, Any] = {}
    workers_doc: Dict[str, Any] = {}
    predict_doc: Dict[str, Any] = {}
    if isinstance(snapshot, dict):
        cells = dict(snapshot.get("cells", {}))
        workers_doc = dict(snapshot.get("workers", {}))
        predict_doc = dict(snapshot.get("predict", {}))
    requested = max(1, int(cells.get("requested", 0)))

    latencies.sort()
    report = LoadTestReport(
        clients=config.clients,
        requests=total,
        workers=config.workers,
        completed=state["completed"],
        failed=len(failures),
        failures=failures,
        throttled_responses=sum(c.throttled for c in clients),
        transport_retries=sum(c.transport_errors for c in clients),
        wall_s=wall,
        throughput_rps=state["completed"] / wall,
        p50_s=percentile(latencies, 0.50),
        p95_s=percentile(latencies, 0.95),
        p99_s=percentile(latencies, 0.99),
        max_s=latencies[-1] if latencies else None,
        coalescing_rate=int(cells.get("coalesced", 0)) / requested,
        store_hit_rate=int(cells.get("store_hits", 0)) / requested,
        hot_rate=(int(cells.get("coalesced", 0))
                  + int(cells.get("store_hits", 0))) / requested,
        predict_answers=int(predict_doc.get("answers_total", 0)),
        cells_requeued=int(cells.get("requeued", 0)),
        worker_restarts=int(workers_doc.get("restarts_total", 0)),
        worker_killed=bool(state["killed"]),
        cells=cells,
    )
    report.violations = evaluate_slos(report, config.slo)
    report.passed = not report.violations
    return report
