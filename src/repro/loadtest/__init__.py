"""Load-testing harness for the simulation service (``repro loadtest``).

Drives thousands of concurrent asyncio clients against a running (or
self-hosted) cluster with a zipfian hot/cold cell mix, measures
latency percentiles, throughput, coalescing and throttle rates, and
gates the run on configurable SLOs.
"""

from repro.loadtest.client import AsyncServeClient, LoadClientError
from repro.loadtest.harness import (
    LoadTestConfig,
    LoadTestReport,
    SloConfig,
    run_loadtest,
)
from repro.loadtest.mix import MixConfig, build_population, build_schedule

__all__ = [
    "AsyncServeClient",
    "LoadClientError",
    "LoadTestConfig",
    "LoadTestReport",
    "MixConfig",
    "SloConfig",
    "build_population",
    "build_schedule",
    "run_loadtest",
]
