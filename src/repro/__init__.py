"""repro — reproduction of "Improving First Level Cache Efficiency for
GPUs Using Dynamic Line Protection" (Zhu, Wernsman, Zambreno; ICPP 2018).

The package provides:

* :mod:`repro.core` — the DLP scheme and its comparators
  (baseline LRU, Stall-Bypass, Global-Protection);
* :mod:`repro.cache` — the L1D/L2 cache substrate (MSHRs, reservation,
  stall semantics);
* :mod:`repro.gpu` — a warp-level discrete-event GPU timing simulator
  standing in for GPGPU-Sim;
* :mod:`repro.memory` — interconnect / memory-partition / DRAM models;
* :mod:`repro.workloads` — the 18 synthetic benchmark models of Table 2;
* :mod:`repro.analysis` — reuse-distance profiling and metrics;
* :mod:`repro.experiments` — one driver per paper table/figure.

Quick start::

    from repro import run_app
    result = run_app("bfs", policy="dlp")
    print(result.ipc)
"""

from repro.core import (
    BaselinePolicy,
    DlpPolicy,
    GlobalProtectionPolicy,
    StallBypassPolicy,
    make_policy,
)
from repro.gpu import BASELINE_CONFIG, SCALED_CONFIG, GPUConfig, GpuSimulator, SimResult

__version__ = "1.0.0"

__all__ = [
    "BaselinePolicy",
    "StallBypassPolicy",
    "GlobalProtectionPolicy",
    "DlpPolicy",
    "make_policy",
    "GPUConfig",
    "BASELINE_CONFIG",
    "SCALED_CONFIG",
    "GpuSimulator",
    "SimResult",
    "run_app",
    "__version__",
]


def run_app(name: str, policy: str = "baseline", config: GPUConfig = None, **kwargs):
    """Convenience wrapper: simulate one Table 2 application end to end.

    Imports lazily so ``import repro`` stays light.
    """
    from repro.experiments.runner import run_workload

    return run_workload(name, policy=policy, config=config, **kwargs)
